// Tests for the observability layer (docs/OBSERVABILITY.md): the metrics
// registry's lock-free fast path under concurrency, histogram percentiles
// against the exact gcsm::percentile, trace span nesting, and the JSON
// snapshot schema pinned by a golden file. Also carries the regression
// cases for the bugs fixed alongside the layer (topk_coverage on an empty
// estimate, binomial_inversion at p == 1, strict CLI numeric parsing).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "util/binomial.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace gcsm {
namespace {

// ---------------------------------------------------------- registry -----

TEST(MetricsRegistry, RegisterOnFirstUseReturnsStableReferences) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("a");
  metrics::Counter& a2 = reg.counter("a");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  EXPECT_EQ(a2.value(), 3u);

  metrics::Gauge& g = reg.gauge("g");
  EXPECT_EQ(&g, &reg.gauge("g"));
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);

  metrics::Histogram& h = reg.histogram("h");
  EXPECT_EQ(&h, &reg.histogram("h"));
  h.observe(4.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, SnapshotCopiesAndLooksUp) {
  metrics::Registry reg;
  reg.counter("runs").add(7);
  reg.gauge("level").set(-1.5);
  reg.histogram("ms").observe(10.0);
  reg.histogram("ms").observe(20.0);

  const metrics::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("runs"), 7u);
  EXPECT_EQ(snap.counter_or("absent", 42), 42u);
  ASSERT_TRUE(snap.gauge("level").has_value());
  EXPECT_DOUBLE_EQ(*snap.gauge("level"), -1.5);
  EXPECT_FALSE(snap.gauge("absent").has_value());
  const metrics::HistogramSummary* ms = snap.histogram("ms");
  ASSERT_NE(ms, nullptr);
  EXPECT_EQ(ms->count, 2u);
  EXPECT_DOUBLE_EQ(ms->sum, 30.0);
  EXPECT_DOUBLE_EQ(ms->min, 10.0);
  EXPECT_DOUBLE_EQ(ms->max, 20.0);

  // The snapshot is a copy: later updates do not bleed into it.
  reg.counter("runs").add(100);
  EXPECT_EQ(snap.counter_or("runs"), 7u);
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("c");
  c.add(9);
  reg.gauge("g").set(3.0);
  reg.histogram("h").observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // the reference survives the reset
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_DOUBLE_EQ(reg.histogram("h").min(), 0.0);
  EXPECT_DOUBLE_EQ(reg.histogram("h").max(), 0.0);
}

// The lock-free fast path must count exactly under contention; run under
// the tsan preset this also proves the absence of data races.
TEST(MetricsRegistry, ConcurrentUpdatesCountExactly) {
  metrics::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  metrics::Counter& c = reg.counter("shared.counter");
  metrics::Gauge& g = reg.gauge("shared.gauge");
  metrics::Histogram& h = reg.histogram("shared.histogram");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);
        h.observe(static_cast<double>(t * kPerThread + i + 1));
        // Interleave registrations to race the registry mutex too.
        if (i == kPerThread / 2) reg.counter("late." + std::to_string(t));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  constexpr auto kTotal = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c.value(), kTotal);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kTotal));
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kTotal));
}

// --------------------------------------------------------- histogram -----

TEST(MetricsHistogram, EmptyIsAllZero) {
  metrics::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(MetricsHistogram, PercentileTracksExactWithinBinResolution) {
  // Samples spanning several orders of magnitude, like phase times do.
  Rng rng(123);
  std::vector<double> samples;
  metrics::Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp2(rng.uniform() * 20.0 - 4.0);  // 2^-4 .. 2^16
    samples.push_back(v);
    h.observe(v);
  }
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double binned = h.percentile(p);
    // Bins split octaves 8 ways, so the geometric midpoint is within
    // 2^(1/16) ~ 4.4% of any sample in the bin; 10% leaves rank slack.
    EXPECT_NEAR(binned / exact, 1.0, 0.10) << "p" << p;
  }
}

TEST(MetricsHistogram, HandlesZeroAndExtremeSamples) {
  metrics::Histogram h;
  h.observe(0.0);
  h.observe(-3.0);   // clamped into bin 0, still counted
  h.observe(1e300);  // saturates the top bin
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  // Percentiles stay within the observed range even with saturated bins.
  EXPECT_GE(h.percentile(99), -3.0);
  EXPECT_LE(h.percentile(99), 1e300);
}

// ------------------------------------------------------------- trace -----

TEST(TraceSpan, DisarmedSpanRecordsNothing) {
  trace::set_collector(nullptr);
  { const trace::Span span("noop"); }
  trace::TraceCollector collector;
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceSpan, NestedSpansAreContained) {
  trace::TraceCollector collector;
  trace::set_collector(&collector);
  {
    const trace::Span outer("outer");
    const trace::Span inner("inner");
    // Inner closes before outer by scope order.
  }
  trace::set_collector(nullptr);

  const std::vector<trace::TraceEvent> events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  const trace::TraceEvent& inner = events[0];
  const trace::TraceEvent& outer = events[1];
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-3);

  const std::string json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(TraceCollector, ClearDropsEvents) {
  trace::TraceCollector collector;
  trace::set_collector(&collector);
  { const trace::Span span("once"); }
  trace::set_collector(nullptr);
  EXPECT_EQ(collector.size(), 1u);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

// -------------------------------------------------------------- json -----

TEST(JsonWriter, EscapesAndFormats) {
  json::Writer w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.key("n").value(1.5);
  w.key("nan").value(std::nan(""));
  w.key("i").value(static_cast<std::int64_t>(-3));
  w.key("b").value(true);
  w.key("arr").begin_array().value(1.0).value(2.0).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"n\":1.5,\"nan\":null,\"i\":-3,"
            "\"b\":true,\"arr\":[1,2]}");
}

// The on-disk schema contract: a deterministic registry must serialize to
// exactly the golden bytes. A diff here means the schema changed — update
// docs/OBSERVABILITY.md, scripts/check_bench_json.py, and the golden file
// deliberately, in the same commit.
TEST(MetricsSnapshot, JsonMatchesGoldenFile) {
  metrics::Registry reg;
  reg.counter("cache.hits").add(120);
  reg.counter("cache.misses").add(8);
  reg.gauge("pipeline.degradation_level").set(1.0);
  metrics::Histogram& h = reg.histogram("pipeline.batch_wall_ms");
  for (int i = 1; i <= 16; ++i) h.observe(static_cast<double>(i));
  const std::string actual = reg.snapshot().to_json();

  const std::string path =
      std::string(GCSM_TEST_GOLDEN_DIR) + "/metrics_snapshot.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  // The golden file ends with the POSIX trailing newline; the snapshot
  // string does not.
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  EXPECT_EQ(actual, expected) << "actual document:\n" << actual;
}

// ------------------------------------------------------- regressions -----

// An empty estimate used to hand nth_element an iterator before begin()
// (ke == 0 made `begin() + (ke - 1)` wrap); it must mean zero coverage.
TEST(Regression, TopkCoverageEmptyEstimate) {
  const std::vector<std::uint64_t> truth{1, 2, 3};
  EXPECT_DOUBLE_EQ(topk_coverage(truth, {}, 2), 0.0);
  EXPECT_DOUBLE_EQ(topk_coverage({}, {}, 2), 0.0);
  EXPECT_DOUBLE_EQ(topk_coverage(truth, {3.0, 2.0, 1.0}, 0), 0.0);
}

// p == 1 used to drive the CDF walk through 0 * inf = NaN and return 1;
// a certain success must return n from the public detail entry point too.
TEST(Regression, BinomialInversionDegenerateProbabilities) {
  Rng rng(7);
  EXPECT_EQ(detail::binomial_inversion(rng, 100, 1.0), 100u);
  EXPECT_EQ(detail::binomial_inversion(rng, 100, 1.5), 100u);
  EXPECT_EQ(detail::binomial_inversion(rng, 100, 0.0), 0u);
  EXPECT_EQ(detail::binomial_inversion(rng, 100, -0.5), 0u);
  EXPECT_EQ(detail::binomial_inversion(rng, 0, 1.0), 0u);
}

// Malformed numeric flags must throw Error(kConfig) naming `flag: value`
// (the drivers' catch blocks turn that into the one-line exit-1 contract).
TEST(Regression, CliRejectsMalformedNumericFlags) {
  const char* argv[] = {"prog", "--batch=abc", "--scale=1.5x", "--ok=7"};
  const CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("ok", 0), 7);
  try {
    args.get_int("batch", 0);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find("batch: abc"), std::string::npos);
  }
  EXPECT_THROW(args.get_double("scale", 0.0), Error);
  // Absent or empty values still fall back to the default.
  EXPECT_EQ(args.get_int("absent", 11), 11);
}

}  // namespace
}  // namespace gcsm
