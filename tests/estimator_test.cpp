#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/frequency_estimator.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/stats.hpp"

namespace gcsm {
namespace {

// Ground-truth access counts: run the exact incremental matching through a
// CountingPolicy.
std::vector<std::uint64_t> true_access_counts(const DynamicGraph& graph,
                                              const EdgeBatch& batch,
                                              const QueryGraph& q) {
  gpusim::SimtExecutor exec(1);
  MatchEngine engine(q, exec);
  CountingPolicy policy(graph);
  gpusim::TrafficCounters c;
  engine.match_batch(const_cast<DynamicGraph&>(graph), batch, policy, c);
  return policy.access_counts();
}

struct Fixture {
  Fixture(int seed, VertexId n, std::uint32_t attach, std::size_t batch_size) {
    Rng rng(seed);
    graph_csr = generate_barabasi_albert(n, attach, 1, rng);
    UpdateStreamOptions opt;
    opt.pool_edge_count = batch_size;
    opt.batch_size = batch_size;
    opt.seed = seed + 1;
    stream = make_update_stream(graph_csr, opt);
    graph = std::make_unique<DynamicGraph>(stream.initial);
    graph->apply_batch(stream.batches[0]);
  }

  CsrGraph graph_csr;
  UpdateStream stream;
  std::unique_ptr<DynamicGraph> graph;
};

TEST(Estimator, DefaultWalkCountFollowsPaperFormulaWithinWindow) {
  // M = |dE| * D^(n-2) / 32^n, clamped into [64|dE|, |dE|*max(D/4, 64)].
  // D = 512, n = 5: formula = |dE| * 512^3 / 32^5 = 4|dE| -> below the
  // floor, so the floor wins.
  EXPECT_EQ(FrequencyEstimator::default_num_walks(1000, 512, 5, 1, 1ull << 40),
            64000u);
  // D = 1024, n = 5: formula = 32|dE| -> still floored at 64|dE|.
  EXPECT_EQ(
      FrequencyEstimator::default_num_walks(1000, 1024, 5, 1, 1ull << 40),
      64000u);
  // D = 2048, n = 5: formula = 256|dE| -> within [64|dE|, 512|dE|]: exact.
  EXPECT_EQ(
      FrequencyEstimator::default_num_walks(1000, 2048, 5, 1, 1ull << 40),
      256000u);
  // n = 7 explodes -> capped at |dE| * D/4.
  EXPECT_EQ(
      FrequencyEstimator::default_num_walks(1000, 2048, 7, 1, 1ull << 40),
      512000u);
  // Global clamps still dominate.
  EXPECT_EQ(FrequencyEstimator::default_num_walks(1u << 20, 10000, 7, 512,
                                                  4096),
            4096u);
}

TEST(Estimator, ConfidenceBoundMatchesEq5) {
  // Direct evaluation of Eq. 5.
  const double m = FrequencyEstimator::min_walks_for_confidence(
      100, 8, 4, 1.0, 0.5, 50.0);
  const double expect = 3.0 * 3.0 * 100 * 8 * 8 / (1.0 * 0.5 * 50.0);
  EXPECT_NEAR(m, expect, 1e-9);
}

TEST(Estimator, ZeroFrequencyForUntouchedVertices) {
  Fixture f(42, 400, 3, 64);
  FrequencyEstimator est(make_triangle(), {.num_walks = 2048});
  Rng rng(7);
  const EstimateResult r = est.estimate(*f.graph, f.stream.batches[0], rng);
  ASSERT_EQ(r.frequency.size(),
            static_cast<std::size_t>(f.graph->num_vertices()));
  // The estimate must be nonnegative everywhere and positive somewhere.
  double total = 0;
  for (const double v : r.frequency) {
    ASSERT_GE(v, 0.0);
    total += v;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_GT(r.nodes_visited, 0u);
  EXPECT_EQ(r.walks, 2048u);
}

TEST(Estimator, UnbiasedTotalEstimate) {
  // E[sum of estimated frequencies] should match the true total access
  // count. Average many independent estimates and compare.
  Fixture f(13, 150, 3, 32);
  const QueryGraph q = make_triangle();
  const auto truth = true_access_counts(*f.graph, f.stream.batches[0], q);
  const double true_total = static_cast<double>(
      std::accumulate(truth.begin(), truth.end(), std::uint64_t{0}));
  ASSERT_GT(true_total, 0.0);

  FrequencyEstimator est(q, {.num_walks = 4096});
  RunningStats totals;
  for (int rep = 0; rep < 30; ++rep) {
    Rng rng(1000 + rep);
    const EstimateResult r = est.estimate(*f.graph, f.stream.batches[0], rng);
    totals.add(std::accumulate(r.frequency.begin(), r.frequency.end(), 0.0));
  }
  // Within 3 standard errors of the truth.
  const double sem = totals.stddev() / std::sqrt(30.0);
  EXPECT_NEAR(totals.mean(), true_total, 3 * sem + 0.05 * true_total);
}

TEST(Estimator, RanksHotVerticesHighly) {
  // Fig. 15b's property: the estimator's top-k has high overlap with the
  // true top-k access set on a skewed graph.
  Fixture f(77, 800, 4, 128);
  const QueryGraph q = make_pattern(1);
  const auto truth = true_access_counts(*f.graph, f.stream.batches[0], q);

  FrequencyEstimator est(q, {.num_walks = 1 << 15});
  Rng rng(5);
  const EstimateResult r = est.estimate(*f.graph, f.stream.batches[0], rng);

  const std::size_t nonzero = static_cast<std::size_t>(
      std::count_if(truth.begin(), truth.end(),
                    [](std::uint64_t c) { return c > 0; }));
  ASSERT_GT(nonzero, 20u);
  const std::size_t k = std::max<std::size_t>(5, nonzero / 20);  // top 5%
  EXPECT_GE(topk_coverage(truth, r.frequency, k), 0.6);
}

TEST(Estimator, MoreWalksReduceVariance) {
  Fixture f(21, 200, 3, 32);
  const QueryGraph q = make_triangle();
  auto spread = [&](std::uint64_t walks) {
    FrequencyEstimator est(q, {.num_walks = walks});
    RunningStats s;
    for (int rep = 0; rep < 20; ++rep) {
      Rng rng(3000 + rep);
      const EstimateResult r =
          est.estimate(*f.graph, f.stream.batches[0], rng);
      s.add(std::accumulate(r.frequency.begin(), r.frequency.end(), 0.0));
    }
    return s.variance();
  };
  // 16x the walks should cut variance by roughly 16x; allow 3x slack.
  EXPECT_LT(spread(8192), spread(512) / 3.0);
}

TEST(Estimator, DeterministicGivenRngState) {
  Fixture f(99, 120, 3, 16);
  FrequencyEstimator est(make_triangle(), {.num_walks = 1024});
  Rng r1(11);
  Rng r2(11);
  const auto a = est.estimate(*f.graph, f.stream.batches[0], r1);
  const auto b = est.estimate(*f.graph, f.stream.batches[0], r2);
  EXPECT_EQ(a.frequency, b.frequency);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
}

TEST(Estimator, IndependentWalksAgreeWithMergedInExpectation) {
  // Sec. IV-B claims the merged binomial execution is equivalent to M
  // independent walks; the two implementations must produce statistically
  // equal totals.
  Fixture f(55, 120, 3, 24);
  const QueryGraph q = make_triangle();
  FrequencyEstimator est(q, {.num_walks = 2048});
  RunningStats merged_totals, indep_totals;
  for (int rep = 0; rep < 12; ++rep) {
    Rng r1(4000 + rep);
    Rng r2(5000 + rep);
    const auto m = est.estimate(*f.graph, f.stream.batches[0], r1);
    const auto ind =
        est.estimate_independent(*f.graph, f.stream.batches[0], r2);
    merged_totals.add(
        std::accumulate(m.frequency.begin(), m.frequency.end(), 0.0));
    indep_totals.add(
        std::accumulate(ind.frequency.begin(), ind.frequency.end(), 0.0));
  }
  const double sem =
      std::sqrt(merged_totals.variance() / 12 + indep_totals.variance() / 12);
  EXPECT_NEAR(merged_totals.mean(), indep_totals.mean(),
              4 * sem + 0.05 * merged_totals.mean());
}

TEST(Estimator, MergedIsCheaperThanIndependentAtEqualWalks) {
  Fixture f(56, 200, 4, 48);
  const QueryGraph q = make_pattern(1);
  FrequencyEstimator est(q, {.num_walks = 8192});
  Rng r1(1);
  Rng r2(1);
  const auto merged = est.estimate(*f.graph, f.stream.batches[0], r1);
  const auto indep =
      est.estimate_independent(*f.graph, f.stream.batches[0], r2);
  // Merged execution shares set operations across walks.
  EXPECT_LT(merged.ops, indep.ops / 2);
}

TEST(Estimator, AdaptiveRespectsMaxWalks) {
  Fixture f(57, 100, 3, 16);
  EstimatorOptions opt;
  opt.min_walks = 256;
  opt.max_walks = 4096;
  FrequencyEstimator est(make_triangle(), opt);
  Rng rng(9);
  const EstimateResult r =
      est.estimate_adaptive(*f.graph, f.stream.batches[0], rng);
  EXPECT_GE(r.walks, 256u);
  EXPECT_LE(r.walks, 4096u);
  double total = 0;
  for (const double v : r.frequency) total += v;
  EXPECT_GT(total, 0.0);
}

TEST(Estimator, DefaultWalksHonorsCostCap) {
  // |dE| * D / 4 caps the formula when D^(n-2) explodes.
  const std::uint64_t m = FrequencyEstimator::default_num_walks(
      4096, 10000, 7, 1, ~0ull >> 1);
  EXPECT_EQ(m, 4096ull * 10000 / 4);
}

TEST(Estimator, EmptyBatchYieldsZeroEstimate) {
  Fixture f(15, 100, 3, 16);
  f.graph->reorganize();
  EdgeBatch empty;
  f.graph->apply_batch(empty);
  FrequencyEstimator est(make_triangle(), {.num_walks = 256});
  Rng rng(1);
  const EstimateResult r = est.estimate(*f.graph, empty, rng);
  for (const double v : r.frequency) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(r.nodes_visited, 0u);
}

}  // namespace
}  // namespace gcsm
