# Empty dependencies file for social_rumor.
# This may be replaced when dependencies are built.
