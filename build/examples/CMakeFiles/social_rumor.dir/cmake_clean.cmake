file(REMOVE_RECURSE
  "CMakeFiles/social_rumor.dir/social_rumor.cpp.o"
  "CMakeFiles/social_rumor.dir/social_rumor.cpp.o.d"
  "social_rumor"
  "social_rumor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_rumor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
