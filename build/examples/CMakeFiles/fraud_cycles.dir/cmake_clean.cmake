file(REMOVE_RECURSE
  "CMakeFiles/fraud_cycles.dir/fraud_cycles.cpp.o"
  "CMakeFiles/fraud_cycles.dir/fraud_cycles.cpp.o.d"
  "fraud_cycles"
  "fraud_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
