# Empty compiler generated dependencies file for fraud_cycles.
# This may be replaced when dependencies are built.
