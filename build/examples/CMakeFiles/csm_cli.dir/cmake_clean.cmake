file(REMOVE_RECURSE
  "CMakeFiles/csm_cli.dir/csm_cli.cpp.o"
  "CMakeFiles/csm_cli.dir/csm_cli.cpp.o.d"
  "csm_cli"
  "csm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
