# Empty compiler generated dependencies file for csm_cli.
# This may be replaced when dependencies are built.
