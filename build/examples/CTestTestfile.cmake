# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--batches=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fraud_cycles "/root/repo/build/examples/fraud_cycles" "--accounts=4000" "--batches=3" "--batch=128")
set_tests_properties(example_fraud_cycles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_rumor "/root/repo/build/examples/social_rumor" "--users=5000" "--batches=2" "--batch=128")
set_tests_properties(example_social_rumor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csm_cli "/root/repo/build/examples/csm_cli" "--dataset=AZ" "--scale=0.1" "--query=triangle" "--engine=gcsm" "--batch=256" "--batches=2")
set_tests_properties(example_csm_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csm_cli_rf "/root/repo/build/examples/csm_cli" "--dataset=AZ" "--scale=0.05" "--query=Q1" "--engine=rf" "--batch=128" "--batches=1")
set_tests_properties(example_csm_cli_rf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csm_cli_list "/root/repo/build/examples/csm_cli" "--dataset=PA" "--scale=0.1" "--query=cycle4" "--engine=cpu" "--batch=256" "--batches=1" "--list=5" "--labels=1")
set_tests_properties(example_csm_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
