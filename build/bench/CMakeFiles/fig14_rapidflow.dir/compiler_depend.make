# Empty compiler generated dependencies file for fig14_rapidflow.
# This may be replaced when dependencies are built.
