file(REMOVE_RECURSE
  "CMakeFiles/fig14_rapidflow.dir/fig14_rapidflow.cpp.o"
  "CMakeFiles/fig14_rapidflow.dir/fig14_rapidflow.cpp.o.d"
  "fig14_rapidflow"
  "fig14_rapidflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rapidflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
