# Empty compiler generated dependencies file for table3_reorg.
# This may be replaced when dependencies are built.
