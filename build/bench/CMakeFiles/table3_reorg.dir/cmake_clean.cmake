file(REMOVE_RECURSE
  "CMakeFiles/table3_reorg.dir/table3_reorg.cpp.o"
  "CMakeFiles/table3_reorg.dir/table3_reorg.cpp.o.d"
  "table3_reorg"
  "table3_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
