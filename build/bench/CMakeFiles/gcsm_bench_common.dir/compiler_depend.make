# Empty compiler generated dependencies file for gcsm_bench_common.
# This may be replaced when dependencies are built.
