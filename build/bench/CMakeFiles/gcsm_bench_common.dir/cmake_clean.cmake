file(REMOVE_RECURSE
  "CMakeFiles/gcsm_bench_common.dir/harness.cpp.o"
  "CMakeFiles/gcsm_bench_common.dir/harness.cpp.o.d"
  "libgcsm_bench_common.a"
  "libgcsm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcsm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
