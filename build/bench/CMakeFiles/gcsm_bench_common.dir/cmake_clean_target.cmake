file(REMOVE_RECURSE
  "libgcsm_bench_common.a"
)
