file(REMOVE_RECURSE
  "CMakeFiles/ablation_merged.dir/ablation_merged.cpp.o"
  "CMakeFiles/ablation_merged.dir/ablation_merged.cpp.o.d"
  "ablation_merged"
  "ablation_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
