# Empty compiler generated dependencies file for ablation_merged.
# This may be replaced when dependencies are built.
