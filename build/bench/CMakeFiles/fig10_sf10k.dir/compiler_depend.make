# Empty compiler generated dependencies file for fig10_sf10k.
# This may be replaced when dependencies are built.
