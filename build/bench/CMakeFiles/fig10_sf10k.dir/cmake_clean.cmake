file(REMOVE_RECURSE
  "CMakeFiles/fig10_sf10k.dir/fig10_sf10k.cpp.o"
  "CMakeFiles/fig10_sf10k.dir/fig10_sf10k.cpp.o.d"
  "fig10_sf10k"
  "fig10_sf10k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sf10k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
