file(REMOVE_RECURSE
  "CMakeFiles/fig15_access.dir/fig15_access.cpp.o"
  "CMakeFiles/fig15_access.dir/fig15_access.cpp.o.d"
  "fig15_access"
  "fig15_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
