# Empty dependencies file for fig15_access.
# This may be replaced when dependencies are built.
