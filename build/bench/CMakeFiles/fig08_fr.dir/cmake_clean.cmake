file(REMOVE_RECURSE
  "CMakeFiles/fig08_fr.dir/fig08_fr.cpp.o"
  "CMakeFiles/fig08_fr.dir/fig08_fr.cpp.o.d"
  "fig08_fr"
  "fig08_fr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
