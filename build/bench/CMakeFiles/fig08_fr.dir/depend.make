# Empty dependencies file for fig08_fr.
# This may be replaced when dependencies are built.
