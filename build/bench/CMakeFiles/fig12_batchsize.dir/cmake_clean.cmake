file(REMOVE_RECURSE
  "CMakeFiles/fig12_batchsize.dir/fig12_batchsize.cpp.o"
  "CMakeFiles/fig12_batchsize.dir/fig12_batchsize.cpp.o.d"
  "fig12_batchsize"
  "fig12_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
