# Empty compiler generated dependencies file for fig12_batchsize.
# This may be replaced when dependencies are built.
