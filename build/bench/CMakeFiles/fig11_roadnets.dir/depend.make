# Empty dependencies file for fig11_roadnets.
# This may be replaced when dependencies are built.
