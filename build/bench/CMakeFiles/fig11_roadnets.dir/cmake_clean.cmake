file(REMOVE_RECURSE
  "CMakeFiles/fig11_roadnets.dir/fig11_roadnets.cpp.o"
  "CMakeFiles/fig11_roadnets.dir/fig11_roadnets.cpp.o.d"
  "fig11_roadnets"
  "fig11_roadnets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_roadnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
