# Empty compiler generated dependencies file for fig09_sf3k.
# This may be replaced when dependencies are built.
