file(REMOVE_RECURSE
  "CMakeFiles/fig09_sf3k.dir/fig09_sf3k.cpp.o"
  "CMakeFiles/fig09_sf3k.dir/fig09_sf3k.cpp.o.d"
  "fig09_sf3k"
  "fig09_sf3k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sf3k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
