file(REMOVE_RECURSE
  "CMakeFiles/fig13_vsgm.dir/fig13_vsgm.cpp.o"
  "CMakeFiles/fig13_vsgm.dir/fig13_vsgm.cpp.o.d"
  "fig13_vsgm"
  "fig13_vsgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vsgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
