# Empty compiler generated dependencies file for fig13_vsgm.
# This may be replaced when dependencies are built.
