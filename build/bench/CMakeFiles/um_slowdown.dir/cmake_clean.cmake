file(REMOVE_RECURSE
  "CMakeFiles/um_slowdown.dir/um_slowdown.cpp.o"
  "CMakeFiles/um_slowdown.dir/um_slowdown.cpp.o.d"
  "um_slowdown"
  "um_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
