# Empty compiler generated dependencies file for um_slowdown.
# This may be replaced when dependencies are built.
