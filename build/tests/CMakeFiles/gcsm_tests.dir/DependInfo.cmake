
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/estimator_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/estimator_test.cpp.o.d"
  "/root/repo/tests/gpusim_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/gpusim_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/gpusim_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/match_store_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/match_store_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/match_store_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/gcsm_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/gcsm_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gcsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
