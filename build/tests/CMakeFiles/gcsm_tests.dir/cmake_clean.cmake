file(REMOVE_RECURSE
  "CMakeFiles/gcsm_tests.dir/engine_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/engine_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/estimator_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/estimator_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/gpusim_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/gpusim_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/graph_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/graph_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/integration_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/match_store_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/match_store_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/property_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/query_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/query_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/robustness_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/robustness_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/util_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/util_test.cpp.o.d"
  "CMakeFiles/gcsm_tests.dir/workload_test.cpp.o"
  "CMakeFiles/gcsm_tests.dir/workload_test.cpp.o.d"
  "gcsm_tests"
  "gcsm_tests.pdb"
  "gcsm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcsm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
