# Empty dependencies file for gcsm_tests.
# This may be replaced when dependencies are built.
