# Empty compiler generated dependencies file for gcsm.
# This may be replaced when dependencies are built.
