file(REMOVE_RECURSE
  "libgcsm.a"
)
