
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_policy.cpp" "src/CMakeFiles/gcsm.dir/core/access_policy.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/access_policy.cpp.o.d"
  "/root/repo/src/core/cpu_engine.cpp" "src/CMakeFiles/gcsm.dir/core/cpu_engine.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/cpu_engine.cpp.o.d"
  "/root/repo/src/core/dcsr_cache.cpp" "src/CMakeFiles/gcsm.dir/core/dcsr_cache.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/dcsr_cache.cpp.o.d"
  "/root/repo/src/core/frequency_estimator.cpp" "src/CMakeFiles/gcsm.dir/core/frequency_estimator.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/frequency_estimator.cpp.o.d"
  "/root/repo/src/core/gpu_engine.cpp" "src/CMakeFiles/gcsm.dir/core/gpu_engine.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/gpu_engine.cpp.o.d"
  "/root/repo/src/core/intersect.cpp" "src/CMakeFiles/gcsm.dir/core/intersect.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/intersect.cpp.o.d"
  "/root/repo/src/core/list_ref.cpp" "src/CMakeFiles/gcsm.dir/core/list_ref.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/list_ref.cpp.o.d"
  "/root/repo/src/core/match_store.cpp" "src/CMakeFiles/gcsm.dir/core/match_store.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/match_store.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/gcsm.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/rapidflow_like.cpp" "src/CMakeFiles/gcsm.dir/core/rapidflow_like.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/rapidflow_like.cpp.o.d"
  "/root/repo/src/core/reference_matcher.cpp" "src/CMakeFiles/gcsm.dir/core/reference_matcher.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/reference_matcher.cpp.o.d"
  "/root/repo/src/core/workloads.cpp" "src/CMakeFiles/gcsm.dir/core/workloads.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/core/workloads.cpp.o.d"
  "/root/repo/src/gpusim/cost_model.cpp" "src/CMakeFiles/gcsm.dir/gpusim/cost_model.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/gpusim/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/CMakeFiles/gcsm.dir/gpusim/device.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/gpusim/device.cpp.o.d"
  "/root/repo/src/gpusim/page_cache.cpp" "src/CMakeFiles/gcsm.dir/gpusim/page_cache.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/gpusim/page_cache.cpp.o.d"
  "/root/repo/src/gpusim/simt_executor.cpp" "src/CMakeFiles/gcsm.dir/gpusim/simt_executor.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/gpusim/simt_executor.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/gcsm.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/dynamic_graph.cpp" "src/CMakeFiles/gcsm.dir/graph/dynamic_graph.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/graph/dynamic_graph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/gcsm.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/CMakeFiles/gcsm.dir/graph/graph_io.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/update_stream.cpp" "src/CMakeFiles/gcsm.dir/graph/update_stream.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/graph/update_stream.cpp.o.d"
  "/root/repo/src/query/automorphism.cpp" "src/CMakeFiles/gcsm.dir/query/automorphism.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/query/automorphism.cpp.o.d"
  "/root/repo/src/query/motifs.cpp" "src/CMakeFiles/gcsm.dir/query/motifs.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/query/motifs.cpp.o.d"
  "/root/repo/src/query/patterns.cpp" "src/CMakeFiles/gcsm.dir/query/patterns.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/query/patterns.cpp.o.d"
  "/root/repo/src/query/plan.cpp" "src/CMakeFiles/gcsm.dir/query/plan.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/query/plan.cpp.o.d"
  "/root/repo/src/query/query_graph.cpp" "src/CMakeFiles/gcsm.dir/query/query_graph.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/query/query_graph.cpp.o.d"
  "/root/repo/src/util/binomial.cpp" "src/CMakeFiles/gcsm.dir/util/binomial.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/util/binomial.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/gcsm.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/gcsm.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/gcsm.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/gcsm.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gcsm.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
