// Ablation for Sec. IV-B: merged binomial execution vs M independent
// random walks. Both are the same estimator in distribution; the merged
// version shares set operations across walks, so it should be dramatically
// cheaper at equal M while ranking the same vertices on top.
#include <cstdio>

#include "core/frequency_estimator.hpp"
#include "harness.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "FR", 1024, 0.25);

  print_title("Ablation — merged binomial walks vs independent walks "
              "(paper Sec. IV-B)",
              "merged execution orders of magnitude cheaper at equal M, "
              "same estimates in expectation");

  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const QueryGraph query = paper_query(1, config);

  DynamicGraph graph(stream.initial);
  graph.apply_batch(stream.batches[0]);

  std::printf("%10s %16s %16s %12s %14s\n", "walks", "merged_ms",
              "independent_ms", "speedup", "rank_overlap");
  for (std::uint64_t m : {1024ull, 4096ull, 16384ull, 65536ull}) {
    FrequencyEstimator est(query, {.num_walks = m});
    Rng r1(1);
    Rng r2(1);
    Timer t1;
    const EstimateResult merged = est.estimate(graph, stream.batches[0], r1);
    const double merged_ms = t1.millis();
    Timer t2;
    const EstimateResult indep =
        est.estimate_independent(graph, stream.batches[0], r2);
    const double indep_ms = t2.millis();

    // Rank agreement: overlap of the two estimators' top-1% sets, using one
    // as "truth" for the other (both unbiased, so overlap should be high
    // once M is large).
    std::vector<std::uint64_t> merged_as_counts(merged.frequency.size());
    for (std::size_t i = 0; i < merged.frequency.size(); ++i) {
      merged_as_counts[i] =
          static_cast<std::uint64_t>(merged.frequency[i] * 1e3);
    }
    const std::size_t k =
        std::max<std::size_t>(10, merged.frequency.size() / 100);
    const double overlap =
        topk_coverage(merged_as_counts, indep.frequency, k);
    std::printf("%10llu %16.2f %16.2f %12.1f %13.1f%%\n",
                static_cast<unsigned long long>(m), merged_ms, indep_ms,
                indep_ms / merged_ms, 100.0 * overlap);
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("ablation_merged", argc, argv, run);
}
