// Pipelined vs serial batch schedule on the fig. 9 workload (ISSUE: the
// overlap tentpole's acceptance benchmark).
//
// Runs queries Q1..Q6 on one MultiQueryEngine over the same SF3K update
// stream twice: once batch-at-a-time (process_batch) and once through the
// pipelined process_stream, which stages batch t+1's CPU front half
// (sanitize + estimate) and DCSR pack against batch t's device match.
// Counts must be bit-identical between the two schedules — the overlap is
// a latency optimization, never a semantic one.
//
// This host is a single-core simulator, so the schedule comparison uses
// the cost model (repo convention for paper-shape claims):
//   serial    makespan = sum_t (est_t + pack_t + match_t + reorg_t)
//   pipelined makespan = est_1
//                      + sum_t (pack_t + reorg_t + max(match_t, est_{t+1}))
// i.e. in steady state the estimate rides inside the match window and only
// the larger of the two is paid. Sustained batches/sec is batches over
// makespan; the acceptance bar is >= 1.2x.
//
// The default operating point is the fig. 9 workload (SF3K, Q1..Q6,
// batch 4096) at the 0.05 analog scale, where the shared-estimate share of
// a batch (~20%) matches the paper's Table II FE overheads and the overlap
// is worth >= 1.2x. At the full analog scale (--scale=1) Q5's delta-match
// explodes superlinearly (hundreds of thousands of embedding deltas per
// batch) and is pure device work, pinning the whole mix at ~1.1x
// well-provisioned — and ~1.02x under the harness's 10%-of-adjacency
// budget, where cache misses inflate the match further. The schedule can
// only hide CPU work that exists; it never pretends otherwise (see
// EXPERIMENTS.md, pipeline_overlap).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "server/multi_query_engine.hpp"
#include "util/timer.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;

server::MultiQueryOptions multi_options(const RunConfig& config,
                                        std::uint64_t budget) {
  server::MultiQueryOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.cache_budget_bytes = budget;
  opt.estimator.num_walks = config.num_walks;
  opt.workers = config.workers;
  opt.seed = config.seed;
  return opt;
}

// The simulated phase times of one batch, as the schedule model consumes
// them: est/pack/reorg come from the shared phases, match is the whole
// fan-out (every query's kernel occupies the same device).
struct PhaseTimes {
  double est_s = 0.0;
  double pack_s = 0.0;
  double match_s = 0.0;
  double reorg_s = 0.0;
  double serial_s() const { return est_s + pack_s + match_s + reorg_s; }
};

struct ArmResult {
  EngineResult result;  // per-batch records for the --json report
  std::vector<PhaseTimes> phases;
  // Per batch, per query: signed embeddings (the bit-identity witness).
  std::vector<std::vector<std::int64_t>> counts;
};

void absorb_report(const server::ServerBatchReport& r, std::size_t k,
                   ArmResult& arm) {
  PhaseTimes pt;
  pt.est_s = r.shared.sim_estimate_s;
  pt.pack_s = r.shared.sim_pack_s;
  pt.reorg_s = r.shared.sim_reorg_s;

  BatchRecord rec;
  rec.index = k;
  rec.wall_ms = r.shared.wall_total_ms();
  rec.sim_s = r.shared.sim_total_s();
  rec.embeddings = r.shared.stats.signed_embeddings;
  rec.cached_vertices = r.shared.cached_vertices;
  rec.retries = r.shared.retries;
  std::vector<std::int64_t> per_query;
  for (const server::QueryReport& q : r.queries) {
    pt.match_s += q.report.sim_match_s;
    rec.wall_ms += q.report.wall_match_ms;
    rec.sim_s += q.report.sim_match_s;
    rec.cache_hits += q.report.traffic.cache_hits;
    rec.cache_misses += q.report.traffic.cache_misses;
    rec.retries += q.report.retries;
    rec.cpu_fallback = rec.cpu_fallback || q.report.cpu_fallback;
    per_query.push_back(q.report.stats.signed_embeddings);
  }
  arm.result.wall_ms += rec.wall_ms;
  arm.result.per_batch.push_back(rec);
  arm.phases.push_back(pt);
  arm.counts.push_back(std::move(per_query));
}

double serial_makespan_s(const std::vector<PhaseTimes>& phases) {
  double total = 0.0;
  for (const PhaseTimes& pt : phases) total += pt.serial_s();
  return total;
}

double pipelined_makespan_s(const std::vector<PhaseTimes>& phases) {
  if (phases.empty()) return 0.0;
  double total = phases.front().est_s;
  for (std::size_t t = 0; t < phases.size(); ++t) {
    const double next_est =
        t + 1 < phases.size() ? phases[t + 1].est_s : 0.0;
    total += phases[t].pack_s + phases[t].reorg_s +
             std::max(phases[t].match_s, next_est);
  }
  return total;
}

// Nearest-rank percentile over the modeled per-batch latencies.
double percentile_ms(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank =
      static_cast<std::size_t>(p * static_cast<double>(v.size()) + 0.5);
  return v[rank == 0 ? 0 : rank - 1] * 1e3;
}

}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "SF3K", 4096, 0.05);
  // A schedule comparison needs a schedule: default to an 8-batch stream
  // (the harness-wide default of 1 leaves nothing to overlap).
  config.num_batches = static_cast<std::size_t>(args.get_int("batches", 8));

  print_title("Pipelined batch schedule — overlap t+1's CPU phases with "
              "t's device match",
              "sustained batches/sec improves >= 1.2x over the serial "
              "schedule with bit-identical per-query counts");

  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const std::uint64_t budget = resolve_cache_budget(config, stream.initial);

  std::vector<QueryGraph> patterns;
  for (int i = 1; i <= 6; ++i) patterns.push_back(paper_query(i, config));

  // Both arms must consume the exact same batch prefix (the stream pool may
  // yield fewer batches than requested).
  const std::vector<EdgeBatch> batches(
      stream.batches.begin(),
      stream.batches.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(config.num_batches, stream.batches.size())));

  // Serial arm: the classic one-call-per-batch loop.
  ArmResult serial;
  serial.result.engine = "serial";
  serial.result.query = "Q1-6";
  {
    server::MultiQueryEngine engine(stream.initial,
                                    multi_options(config, budget));
    for (const QueryGraph& q : patterns) engine.register_query(q);
    for (std::size_t k = 0; k < batches.size(); ++k) {
      absorb_report(engine.process_batch(batches[k]), k, serial);
    }
  }

  // Pipelined arm: the same batches through process_stream. Reports are
  // surfaced through the sink in batch order.
  ArmResult piped;
  piped.result.engine = "pipelined";
  piped.result.query = "Q1-6";
  {
    server::MultiQueryEngine engine(stream.initial,
                                    multi_options(config, budget));
    for (const QueryGraph& q : patterns) engine.register_query(q);
    std::size_t k = 0;
    engine.process_stream(batches, [&](server::ServerBatchReport&& r) {
      absorb_report(r, k++, piped);
    });
  }

  // Bit-identity gate: every query's count on every batch.
  if (serial.counts != piped.counts) {
    for (std::size_t k = 0; k < serial.counts.size(); ++k) {
      if (k < piped.counts.size() && serial.counts[k] != piped.counts[k]) {
        std::printf("FAIL: counts diverge at batch %zu\n", k);
        break;
      }
    }
    std::printf("FAIL: pipelined counts differ from serial — the overlap "
                "changed semantics\n");
    return 1;
  }

  const double n = static_cast<double>(batches.size());
  const double serial_s = serial_makespan_s(serial.phases);
  const double piped_s = pipelined_makespan_s(piped.phases);
  const double ratio = piped_s > 0.0 ? serial_s / piped_s : 0.0;

  std::vector<double> serial_lat;
  std::vector<double> piped_lat;
  for (std::size_t t = 0; t < serial.phases.size(); ++t) {
    serial_lat.push_back(serial.phases[t].serial_s());
    // A batch's critical-path residency under the pipelined schedule: its
    // own pack + match + reorg (its estimate was hidden inside t-1's match;
    // batch 1 still pays it up front).
    const PhaseTimes& pt = piped.phases[t];
    piped_lat.push_back((t == 0 ? pt.est_s : 0.0) + pt.pack_s + pt.match_s +
                        pt.reorg_s);
  }

  std::printf("\n%-10s %16s %16s %14s %14s\n", "schedule", "makespan_ms",
              "batches/sec", "p50_ms", "p99_ms");
  std::printf("%-10s %16.3f %16.2f %14.3f %14.3f\n", "serial", serial_s * 1e3,
              serial_s > 0.0 ? n / serial_s : 0.0,
              percentile_ms(serial_lat, 0.50), percentile_ms(serial_lat, 0.99));
  std::printf("%-10s %16.3f %16.2f %14.3f %14.3f\n", "pipelined",
              piped_s * 1e3, piped_s > 0.0 ? n / piped_s : 0.0,
              percentile_ms(piped_lat, 0.50), percentile_ms(piped_lat, 0.99));
  std::printf("\nsustained throughput: %.2fx vs serial (acceptance bar "
              "1.20x), counts bit-identical over %zu batches x %zu queries\n",
              ratio, serial.counts.size(), patterns.size());
  std::fflush(stdout);

  if (!config.json_path.empty()) {
    write_json_report(config.json_path, config, {"Q1-6"},
                      {serial.result, piped.result});
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("pipeline_overlap", argc, argv, run);
}
