// Google-benchmark microbenchmarks for the library's primitives: sorted
// intersection, binomial sampling, DCSR lookup, dynamic-graph updates, and
// the frequency estimator. These are the hot paths of the matching kernel
// and the Step-2/Step-5 host phases.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/dcsr_cache.hpp"
#include "core/frequency_estimator.hpp"
#include "core/intersect.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/binomial.hpp"
#include "util/rng.hpp"

namespace {

using namespace gcsm;

std::vector<VertexId> sorted_random(std::size_t n, VertexId range,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.bounded(range)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectBalanced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sorted_random(n, static_cast<VertexId>(4 * n), 1);
  const auto b = sorted_random(n, static_cast<VertexId>(4 * n), 2);
  std::vector<VertexId> out;
  for (auto _ : state) {
    intersect_sorted(a.data(), a.size(), b.data(), b.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSkewed(benchmark::State& state) {
  // Small list vs big list: the galloping path (hub-vertex case).
  const auto small = sorted_random(32, 1 << 20, 3);
  const auto big =
      sorted_random(static_cast<std::size_t>(state.range(0)), 1 << 20, 4);
  std::vector<VertexId> out;
  for (auto _ : state) {
    intersect_sorted(small.data(), small.size(), big.data(), big.size(),
                     out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectSkewed)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BinomialSmallP(benchmark::State& state) {
  Rng rng(5);
  const double p = 1.0 / static_cast<double>(state.range(0));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += binomial(rng, 1 << 16, p);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BinomialSmallP)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_DcsrLookup(benchmark::State& state) {
  Rng rng(6);
  const CsrGraph csr = generate_barabasi_albert(
      static_cast<VertexId>(state.range(0)), 8, 1, rng);
  DynamicGraph graph(csr);
  gpusim::Device device;
  gpusim::TrafficCounters ctr;
  DcsrCache cache;
  std::vector<VertexId> all(static_cast<std::size_t>(graph.num_vertices()));
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<VertexId>(i);
  }
  cache.build(graph, all, 1ull << 30, device, ctr);
  VertexId probe = 0;
  std::uint32_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(probe, ViewMode::kNew, steps));
    probe = (probe + 7919) % graph.num_vertices();
  }
}
BENCHMARK(BM_DcsrLookup)->Arg(1 << 12)->Arg(1 << 16);

void BM_ApplyAndReorganize(benchmark::State& state) {
  Rng rng(7);
  const CsrGraph csr = generate_barabasi_albert(20000, 8, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_fraction = 0.5;
  opt.batch_size = static_cast<std::size_t>(state.range(0));
  opt.seed = 8;
  const UpdateStream stream = make_update_stream(csr, opt);
  std::size_t i = 0;
  DynamicGraph graph(stream.initial);
  for (auto _ : state) {
    if (i >= stream.batches.size()) {
      state.PauseTiming();
      graph = DynamicGraph(stream.initial);
      i = 0;
      state.ResumeTiming();
    }
    graph.apply_batch(stream.batches[i++]);
    graph.reorganize();
  }
  state.SetItemsProcessed(state.iterations() * opt.batch_size);
}
BENCHMARK(BM_ApplyAndReorganize)->Arg(256)->Arg(4096);

void BM_FrequencyEstimator(benchmark::State& state) {
  Rng rng(9);
  const CsrGraph csr = generate_barabasi_albert(20000, 8, 1, rng);
  UpdateStreamOptions opt;
  opt.pool_edge_count = 1024;
  opt.batch_size = 1024;
  opt.seed = 10;
  const UpdateStream stream = make_update_stream(csr, opt);
  DynamicGraph graph(stream.initial);
  graph.apply_batch(stream.batches[0]);
  FrequencyEstimator est(
      make_pattern(1),
      {.num_walks = static_cast<std::uint64_t>(state.range(0))});
  Rng walk_rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        est.estimate(graph, stream.batches[0], walk_rng));
  }
}
BENCHMARK(BM_FrequencyEstimator)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
