// Paper Fig. 14: comparison with RapidFlow on the small graphs (AZ, LJ) —
// the only ones whose candidate index fits in memory. Expected shapes: the
// RF-like system is competitive with (sometimes much faster than) the plain
// CPU baseline thanks to its candidate-size matching order, but GCSM beats
// it by 1.6-4.4x; RF pays with index memory.
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "AZ", 2048, 1.0);

  print_title("Fig. 14 — RapidFlow-like comparison on AZ and LJ analogs",
              "RF ~competitive with CPU (sometimes much faster); GCSM beats "
              "RF 1.6-4.4x; RF consumes index memory");

  for (const std::string& dataset :
       {std::string("AZ"), std::string("LJ")}) {
    RunConfig config = base_config;
    config.dataset = dataset;
    const PreparedStream stream = prepare_stream(config);
    print_workload_line(stream.initial, dataset, config);
    print_result_header();
    for (const int qi : {1, 2, 3, 4, 5, 6}) {
      const QueryGraph query = paper_query(qi, config);
      const EngineResult gcsm_r =
          run_engine(EngineKind::kGcsm, stream, query, config);
      print_result_row(query.name(), gcsm_r, 0.0);
      const EngineResult cpu_r =
          run_engine(EngineKind::kCpu, stream, query, config);
      print_result_row(query.name(), cpu_r, gcsm_r.sim_ms);
      const EngineResult rf_r = run_rapidflow(stream, query, config);
      print_result_row(query.name(), rf_r, gcsm_r.sim_ms);
      std::printf("  RF index footprint: %.2f MB\n",
                  static_cast<double>(rf_r.cached_vertices) / 1e6);
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig14_rapidflow", argc, argv, run);
}
