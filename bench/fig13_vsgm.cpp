// Paper Fig. 13: breakdown of VSGM (k-hop DMA precopy) vs GCSM. Both run
// the same matching kernel; VSGM avoids all zero-copy but must DMA the whole
// k-hop neighborhood first, so its data-copy (DC) phase dominates. The paper
// had to shrink batches to 128 (SF3K) / 64 (SF10K) to make VSGM's k-hop fit
// on the device at all.
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "SF3K", 128, 1.0);

  print_title("Fig. 13 — VSGM vs GCSM breakdown (DC vs Match)",
              "match-kernel time ~equal; VSGM's DC (k-hop DMA) dominates "
              "its total; GCSM total far smaller");

  struct Case {
    const char* dataset;
    std::size_t batch;
    int query;
  };
  for (const Case c : {Case{"SF3K", 128, 1}, Case{"SF10K", 64, 1}}) {
    RunConfig config = base_config;
    config.dataset = c.dataset;
    config.batch_size =
        static_cast<std::size_t>(args.get_int("batch", c.batch));
    const PreparedStream stream = prepare_stream(config);
    print_workload_line(stream.initial, c.dataset, config);
    const QueryGraph query = paper_query(c.query, config);

    std::printf("%-8s %12s %12s %12s %12s\n", "engine", "DC_ms", "match_ms",
                "total_ms", "cpu_MB");
    for (const EngineKind kind :
         {EngineKind::kVsgm, EngineKind::kGcsm}) {
      try {
        const EngineResult r = run_engine(kind, stream, query, config);
        std::printf("%-8s %12.3f %12.3f %12.3f %12.2f\n", r.engine.c_str(),
                    r.sim_dc_ms, r.sim_match_ms, r.sim_ms,
                    static_cast<double>(r.cpu_access_mb));
      } catch (const gpusim::DeviceOomError& e) {
        std::printf("%-8s device OOM: %s (shrink --batch, as the paper did)\n",
                    engine_kind_name(kind), e.what());
      }
      std::fflush(stdout);
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig13_vsgm", argc, argv, run);
}
