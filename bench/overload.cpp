// Adversarial overload run: the admission controller in front of the
// multi-query engine, driven past capacity by the seeded traffic generator
// (docs/ROBUSTNESS.md, "Overload & admission control").
//
// The run first CALIBRATES capacity — a scratch engine with the same eight
// standing queries serves a few batches and the mean simulated service time
// sets batches-per-second — then replays the stream as timed arrivals at
// `--overload` times that capacity (Poisson, uniform, or self-similar
// bursty interarrivals; hot-source churn; optional all-duplicate and
// all-invalid floods) through a bounded ingress queue with deadline
// shedding and the walk-scale degradation ladder. Everything runs on a
// virtual clock whose service time is the deterministic simulated cost, so
// one seed reproduces the same admit/shed/reject sequence bit-for-bit.
//
// Reported: goodput (committed batches per virtual second), shed rate, and
// p50/p95/p99 admission-to-commit latency — in the standard --json schema
// under the "overload" section (validated by scripts/check_bench_json.py).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "server/admission.hpp"
#include "server/multi_query_engine.hpp"
#include "server/traffic_gen.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;

constexpr std::size_t kNumQueries = 8;

server::MultiQueryOptions engine_options(const RunConfig& config,
                                         std::uint64_t budget) {
  server::MultiQueryOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.cache_budget_bytes = budget;
  opt.estimator.num_walks = config.num_walks;
  opt.workers = config.workers;
  opt.seed = config.seed;
  return opt;
}

void register_paper_queries(server::MultiQueryEngine& engine,
                            const RunConfig& config) {
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    engine.register_query(paper_query(static_cast<int>(i % 6) + 1, config));
  }
}

double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "FR", 512, 0.25);
  // An overload story needs a real stream; default well past the 200-batch
  // acceptance floor unless the caller chose a count.
  config.num_batches =
      static_cast<std::size_t>(args.get_int("batches", 208));

  const double overload_factor = args.get_double("overload", 4.0);
  if (overload_factor <= 0.0) {
    throw Error(ErrorCode::kConfig,
                "overload: " + args.get("overload", ""));
  }
  const long long max_queue = args.get_int("max-queue", 48);
  if (max_queue <= 0) {
    throw Error(ErrorCode::kConfig,
                "max-queue: " + args.get("max-queue", ""));
  }
  const double admit_rate = args.get_double("admit-rate", 0.0);
  if (admit_rate < 0.0) {
    throw Error(ErrorCode::kConfig,
                "admit-rate: " + args.get("admit-rate", ""));
  }
  const double shed_deadline_ms = args.get_double("shed-deadline-ms", -1.0);
  if (args.has("shed-deadline-ms") && shed_deadline_ms < 0.0) {
    throw Error(ErrorCode::kConfig,
                "shed-deadline-ms: " + args.get("shed-deadline-ms", ""));
  }
  const server::ShedPolicy policy =
      server::parse_shed_policy(args.get("shed-policy", "oldest"));
  const server::ArrivalKind arrival =
      server::parse_arrival(args.get("arrival", "poisson"));
  const long long sources = args.get_int("sources", 4);
  if (sources <= 0) {
    throw Error(ErrorCode::kConfig, "sources: " + args.get("sources", ""));
  }
  const double dup_flood = args.get_double("dup-flood", 0.05);
  const double invalid_flood = args.get_double("invalid-flood", 0.05);
  const long long churn = args.get_int("churn", 0);
  if (churn < 0) {
    throw Error(ErrorCode::kConfig, "churn: " + args.get("churn", ""));
  }

  print_title(
      "Overload protection — admission control, shedding, degradation",
      "goodput holds near calibrated capacity while the shed rate absorbs "
      "the excess; latency percentiles stay bounded by the queue deadline "
      "instead of growing with the backlog");

  // prepare_stream would cap FR's pool at the paper's 12 * 8192 edges —
  // 192 batches at the default size, under the 200-batch overload floor.
  // Grow the pool to cover the requested count (make_update_stream still
  // clamps it to the graph's edge count at small --scale).
  PreparedStream stream;
  stream.dataset = config.dataset;
  {
    CsrGraph base_graph = make_workload_graph(
        config.dataset, config.scale, config.num_labels, config.seed);
    UpdateStreamOptions sopt = default_stream_options(
        config.dataset, config.batch_size, config.seed + 1);
    if (sopt.pool_edge_count != 0) {
      sopt.pool_edge_count = std::max<std::uint64_t>(
          sopt.pool_edge_count, config.num_batches * config.batch_size);
    }
    UpdateStream s = make_update_stream(base_graph, sopt);
    stream.initial = std::move(s.initial);
    stream.batches = std::move(s.batches);
  }
  print_workload_line(stream.initial, config.dataset, config);
  const std::uint64_t budget = resolve_cache_budget(config, stream.initial);

  // --- Calibration: mean simulated service time with all queries standing.
  double mean_service_s = 0.0;
  {
    server::MultiQueryEngine scratch(stream.initial,
                                     engine_options(config, budget));
    register_paper_queries(scratch, config);
    const std::size_t probe =
        std::min<std::size_t>(8, stream.batches.size());
    double total = 0.0;
    for (std::size_t i = 0; i < probe; ++i) {
      const server::ServerBatchReport r =
          scratch.process_batch(stream.batches[i]);
      double s = r.shared.sim_total_s();
      for (const server::QueryReport& q : r.queries) {
        s += q.report.sim_match_s;
      }
      total += s;
    }
    mean_service_s = probe == 0 ? 1e-3 : total / static_cast<double>(probe);
    if (mean_service_s <= 0.0) mean_service_s = 1e-6;
  }
  const double capacity = 1.0 / mean_service_s;
  std::printf(
      "calibrated capacity: %.1f batches/s (mean service %.3f ms sim); "
      "driving at %.2fx over %zu batches\n",
      capacity, mean_service_s * 1e3, overload_factor, config.num_batches);

  // --- The adversarial schedule.
  server::TrafficOptions traffic;
  traffic.arrival = arrival;
  traffic.rate = capacity * overload_factor;
  traffic.num_sources = static_cast<std::uint32_t>(sources);
  traffic.duplicate_flood_prob = dup_flood;
  traffic.invalid_flood_prob = invalid_flood;
  traffic.hot_churn_every = 32;
  traffic.num_vertices =
      static_cast<std::uint64_t>(stream.initial.num_vertices());
  traffic.seed = config.seed + 101;
  server::TrafficGenerator gen(traffic);
  std::vector<EdgeBatch> base(stream.batches.begin(),
                              stream.batches.begin() +
                                  static_cast<std::ptrdiff_t>(std::min(
                                      config.num_batches,
                                      stream.batches.size())));
  std::vector<server::TrafficItem> schedule = gen.generate(base);
  const std::vector<server::ChurnStep> churn_plan = gen.churn_plan(
      schedule.size(), static_cast<std::uint32_t>(churn),
      static_cast<std::size_t>(max_queue));

  // --- The protected engine.
  server::MultiQueryEngine engine(stream.initial,
                                  engine_options(config, budget));
  register_paper_queries(engine, config);
  server::AdmissionOptions admission;
  admission.max_queue = static_cast<std::size_t>(max_queue);
  admission.admit_rate = admit_rate;
  admission.shed_policy = policy;
  admission.queue_deadline_s = args.has("shed-deadline-ms")
                                   ? shed_deadline_ms / 1e3
                                   : mean_service_s *
                                         static_cast<double>(max_queue) / 2.0;
  server::AdmissionController ctrl(engine, admission);

  EngineResult result;
  result.engine = "overload";
  result.query = "x" + std::to_string(kNumQueries);
  std::vector<server::QueryId> churn_ids;
  std::uint64_t churn_registered = 0;
  const auto sink = [&](server::AdmissionCommit&& c) {
    BatchRecord rec;
    rec.index = result.per_batch.size();
    rec.wall_ms = c.report.shared.wall_total_ms();
    rec.sim_s = c.report.shared.sim_total_s();
    rec.embeddings = c.report.shared.stats.signed_embeddings;
    rec.cached_vertices = c.report.shared.cached_vertices;
    rec.retries = c.report.shared.retries;
    for (const server::QueryReport& q : c.report.queries) {
      rec.sim_s += q.report.sim_match_s;
      rec.cache_hits += q.report.traffic.cache_hits;
      rec.cache_misses += q.report.traffic.cache_misses;
      rec.retries += q.report.retries;
      rec.cpu_fallback = rec.cpu_fallback || q.report.cpu_fallback;
    }
    result.wall_ms += rec.wall_ms;
    result.per_batch.push_back(rec);
  };

  const Timer wall;
  bool capped = false;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (config.duration_s > 0.0 && wall.seconds() >= config.duration_s) {
      std::printf("duration cap reached after %zu/%zu arrivals\n", i,
                  schedule.size());
      capped = true;
      break;
    }
    if (i < churn_plan.size()) {
      for (std::uint32_t r = 0; r < churn_plan[i].registers; ++r) {
        churn_ids.push_back(engine.register_query(
            paper_query(static_cast<int>(churn_registered % 6) + 1, config)));
        ++churn_registered;
      }
      for (std::uint32_t u = 0; u < churn_plan[i].unregisters; ++u) {
        if (churn_ids.empty()) break;
        engine.unregister_query(churn_ids.front());
        churn_ids.erase(churn_ids.begin());
      }
    }
    server::TrafficItem& item = schedule[i];
    ctrl.pump(item.arrival_s, sink);
    ctrl.offer(std::move(item.batch), item.source, item.arrival_s);
  }
  ctrl.finish(sink);

  // --- Summary.
  const server::AdmissionStats& st = ctrl.stats();
  std::vector<double> lat(st.latency_s);
  std::sort(lat.begin(), lat.end());
  const double driven_s =
      std::max(ctrl.server_free_s(),
               schedule.empty() ? 0.0 : schedule.back().arrival_s);
  OverloadSummary sum;
  sum.offered = st.offered;
  sum.admitted = st.admitted;
  sum.committed = st.committed;
  sum.shed = st.shed;
  sum.rejected = st.rejected;
  sum.overload_factor = overload_factor;
  sum.goodput_batches_per_s =
      driven_s > 0.0 ? static_cast<double>(st.committed) / driven_s : 0.0;
  sum.shed_rate = st.admitted == 0
                      ? 0.0
                      : static_cast<double>(st.shed) /
                            static_cast<double>(st.admitted);
  sum.latency_p50_ms = nearest_rank(lat, 0.50) * 1e3;
  sum.latency_p95_ms = nearest_rank(lat, 0.95) * 1e3;
  sum.latency_p99_ms = nearest_rank(lat, 0.99) * 1e3;

  std::printf(
      "\noffered %llu = admitted %llu + rejected %llu; admitted = committed "
      "%llu + shed %llu%s\n",
      static_cast<unsigned long long>(st.offered),
      static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.committed),
      static_cast<unsigned long long>(st.shed),
      capped ? " (duration-capped: partial report)" : "");
  std::printf(
      "goodput %.1f batches/s (capacity %.1f), shed rate %.1f%%, walk scale "
      "%.3f, latency p50/p95/p99 = %.2f/%.2f/%.2f ms\n",
      sum.goodput_batches_per_s, capacity, 100.0 * sum.shed_rate,
      ctrl.walk_scale(), sum.latency_p50_ms, sum.latency_p95_ms,
      sum.latency_p99_ms);
  std::printf(
      "ladder: %llu scale-downs, %llu scale-ups; first scale-down/shed/"
      "reject at ordinal %llu/%llu/%llu\n",
      static_cast<unsigned long long>(st.scale_downs),
      static_cast<unsigned long long>(st.scale_ups),
      static_cast<unsigned long long>(st.first_scale_down_ordinal),
      static_cast<unsigned long long>(st.first_shed_ordinal),
      static_cast<unsigned long long>(st.first_reject_ordinal));

  if (!config.json_path.empty()) {
    write_json_report(config.json_path, config, {result.query}, {result},
                      &sum);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("overload", argc, argv, run);
}
