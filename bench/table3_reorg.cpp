// Paper Table III: graph reorganization time (Step 5) in milliseconds for
// batches of 4096 and 8192 updates on all seven graphs. Expected shape: a
// few milliseconds at most, negligible next to matching time.
#include <cstdio>

#include "core/workloads.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/update_stream.hpp"
#include "harness.hpp"
#include "util/timer.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  const double scale = args.get_double("scale", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      args.get_int("seed", 7));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));

  print_title("Table III — graph reorganization time (ms)",
              "single-digit milliseconds everywhere; grows mildly with "
              "batch size; always negligible vs matching");

  std::printf("%-8s %14s %14s %14s\n", "graph", "|dE|=4096", "|dE|=8192",
              "lists/entry-avg");
  for (const WorkloadSpec& spec : workload_specs()) {
    std::printf("%-8s", spec.name.c_str());
    const CsrGraph base = make_workload_graph(spec.name, scale, 4, seed);
    for (const std::size_t batch_size : {std::size_t{4096}, std::size_t{8192}}) {
      UpdateStreamOptions opt =
          default_stream_options(spec.name, batch_size, seed + 1);
      // Make sure the pool covers at least `repeats` batches.
      if (opt.pool_edge_count != 0) {
        opt.pool_edge_count =
            std::max<EdgeCount>(opt.pool_edge_count, batch_size * repeats);
      }
      const UpdateStream stream = make_update_stream(base, opt);
      DynamicGraph graph(stream.initial);
      double total_ms = 0.0;
      int measured = 0;
      for (const EdgeBatch& batch : stream.batches) {
        if (measured >= repeats) break;
        graph.apply_batch(batch);
        Timer t;
        graph.reorganize();
        total_ms += t.millis();
        ++measured;
      }
      std::printf(" %14.3f", measured > 0 ? total_ms / measured : 0.0);
      std::fflush(stdout);
    }
    std::printf(" %14s\n", "");
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("table3_reorg", argc, argv, run);
}
