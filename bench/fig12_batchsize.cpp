// Paper Fig. 12: batch-size sweep (64 .. 8192) for Q6 on SF3K and Q5 on
// SF10K, GCSM vs zero-copy vs the degree-based cache. Execution time should
// be roughly proportional to batch size and GCSM's speedup over ZP should
// hold across the sweep (paper: 1.8-2.9x vs ZP, 1.6-2.8x vs Naive).
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "SF3K", 8192, 1.0);
  if (!args.has("labels")) {
    // The sweep is about batch-size scaling, not tree depth; shallower
    // labeled trees keep the 2 x 8 x 3-engine grid affordable.
    base_config.num_labels = 4;
    base_config.labeled_queries = true;
  }
  const std::size_t min_batch =
      static_cast<std::size_t>(args.get_int("min-batch", 64));
  const std::size_t max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 8192));

  print_title("Fig. 12 — batch-size sweep",
              "time ~ proportional to batch size; GCSM 1.8-2.9x vs ZP, "
              "1.6-2.8x vs Naive across the sweep");

  struct Case {
    const char* dataset;
    int query;
  };
  for (const Case c : {Case{"SF3K", 6}, Case{"SF10K", 5}}) {
    std::printf("\n-- %s / Q%d --\n", c.dataset, c.query);
    std::printf("%8s %14s %14s %14s %12s %12s\n", "batch", "GCSM_sim_ms",
                "ZP_sim_ms", "Naive_sim_ms", "x_vs_ZP", "x_vs_Naive");
    for (std::size_t batch = max_batch; batch >= min_batch; batch /= 2) {
      RunConfig config = base_config;
      config.dataset = c.dataset;
      config.batch_size = batch;
      const PreparedStream stream = prepare_stream(config);
      const QueryGraph query = paper_query(c.query, config);
      const EngineResult gcsm_r =
          run_engine(EngineKind::kGcsm, stream, query, config);
      const EngineResult zp_r =
          run_engine(EngineKind::kZeroCopy, stream, query, config);
      const EngineResult naive_r =
          run_engine(EngineKind::kNaiveDegree, stream, query, config);
      std::printf("%8zu %14.3f %14.3f %14.3f %12.2f %12.2f\n", batch,
                  gcsm_r.sim_ms, zp_r.sim_ms, naive_r.sim_ms,
                  zp_r.sim_ms / gcsm_r.sim_ms,
                  naive_r.sim_ms / gcsm_r.sim_ms);
      std::fflush(stdout);
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig12_batchsize", argc, argv, run);
}
