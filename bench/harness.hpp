// Shared benchmark harness: builds workload analogs, runs engines over
// update streams, and prints paper-style comparison tables.
//
// Every bench binary accepts:
//   --scale=F     workload size multiplier (default from the binary)
//   --labels=N    number of vertex labels (0/1 = unlabeled)
//   --batch=N     update batch size
//   --batches=N   number of batches to process (results averaged)
//   --workers=N   simulated blocks / host threads
//   --seed=N      master seed
//   --budget=MB   GPU cache budget
//   --queries=Q1,Q3  subset of queries (where applicable)
// Results report both wall-clock on this host and the simulated time from
// the gpusim cost model; paper-shape comparisons use the simulated time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/rapidflow_like.hpp"
#include "core/workloads.hpp"
#include "graph/update_stream.hpp"
#include "query/query_graph.hpp"
#include "util/cli.hpp"

namespace gcsm::bench {

struct RunConfig {
  std::string dataset = "FR";
  double scale = 1.0;
  // 3 labels gives execution trees deep enough for paper-like phase shares
  // at library scale; fewer labels explode Q5, more make trees so shallow
  // that fixed per-batch costs (FE) dominate.
  std::uint32_t num_labels = 3;
  bool labeled_queries = true;
  std::size_t batch_size = 4096;
  std::size_t num_batches = 1;
  std::size_t workers = 0;
  std::uint64_t seed = 7;
  std::uint64_t cache_budget_bytes = 256ull << 20;
  std::uint64_t num_walks = 0;  // 0 = paper default formula
  // --duration-s=F: wall-clock cap on an engine run (0 = unlimited). A run
  // that hits the cap stops cleanly mid-stream: the batch in flight
  // finishes, durable state is flushed, and the --json report covers the
  // batches actually processed (a PARTIAL report, flagged by its smaller
  // per_batch[] count). Soak and overload drivers use this instead of an
  // external kill.
  double duration_s = 0.0;
  // --json=PATH: write the machine-readable run report described in
  // docs/OBSERVABILITY.md ({dataset, queries, config, per_batch[],
  // aggregate{...}}). Empty = no report.
  std::string json_path;

  static RunConfig from_cli(const CliArgs& args, std::string default_dataset,
                            std::size_t default_batch, double default_scale);
};

// A prepared workload: initial snapshot plus batches.
struct PreparedStream {
  CsrGraph initial;
  std::vector<EdgeBatch> batches;
  std::string dataset;
};

PreparedStream prepare_stream(const RunConfig& config);

// Labeled (or wildcard) paper query by index 1..6.
QueryGraph paper_query(int index, const RunConfig& config);

// The GPU cache budget for a run: the configured value, or (when 0) ~10% of
// the graph's adjacency bytes, mirroring the paper's buffer-to-graph ratio
// on its largest datasets.
std::uint64_t resolve_cache_budget(const RunConfig& config,
                                   const CsrGraph& graph);

// One processed batch inside an engine run, as it lands in the --json
// report's per_batch[] array.
struct BatchRecord {
  std::size_t index = 0;
  double wall_ms = 0.0;
  double sim_s = 0.0;
  std::int64_t embeddings = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cached_vertices = 0;
  std::uint32_t retries = 0;
  bool cpu_fallback = false;
};

struct EngineResult {
  std::string engine;
  std::string query;  // filled by run_comparison for the --json report
  double wall_ms = 0.0;      // avg per batch
  double sim_ms = 0.0;       // avg per batch (cost model)
  double sim_match_ms = 0.0;
  double sim_dc_ms = 0.0;    // FE + pack + DMA (the paper's DC+FE)
  double cpu_access_mb = 0.0;
  double cache_hit_rate = 0.0;
  std::int64_t signed_embeddings = 0;
  std::uint64_t cached_vertices = 0;
  double wall_fe_ms = 0.0;
  double wall_dc_ms = 0.0;
  double wall_reorg_ms = 0.0;
  double sim_fe_ms = 0.0;
  std::size_t batches = 0;
  std::vector<BatchRecord> per_batch;
};

// Runs `kind` over the stream's first `num_batches` batches; returns
// averaged metrics. Each engine gets a fresh Pipeline (fresh graph state).
EngineResult run_engine(EngineKind kind, const PreparedStream& stream,
                        const QueryGraph& query, const RunConfig& config);

// The RapidFlow-like CPU system, same reporting shape.
EngineResult run_rapidflow(const PreparedStream& stream,
                           const QueryGraph& query, const RunConfig& config);

// ---- table printing -------------------------------------------------------

void print_title(const std::string& title, const std::string& expectation);
void print_workload_line(const CsrGraph& graph, const std::string& name,
                         const RunConfig& config);
void print_result_header();
void print_result_row(const std::string& query, const EngineResult& r,
                      double baseline_sim_ms);

// Full comparison driver used by Figs. 8-11: runs `engines` (plus
// optionally the RF-like system) for each query index over the configured
// stream, printing one row per engine with speedups relative to the first
// engine listed. Returns 0 for main().
int run_comparison(const std::string& title, const std::string& expectation,
                   const RunConfig& config, const std::vector<int>& queries,
                   const std::vector<EngineKind>& engines,
                   bool include_rapidflow = false);

// Overload-run summary for bench/overload's --json report (the "overload"
// top-level section; validated by scripts/check_bench_json.py). Counts obey
// offered == admitted + rejected and admitted == committed + shed; latency
// percentiles are nearest-rank over admission-to-commit latencies.
struct OverloadSummary {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  double overload_factor = 0.0;  // offered rate / calibrated capacity
  double goodput_batches_per_s = 0.0;  // committed / driven duration
  double shed_rate = 0.0;              // shed / admitted (0 when none)
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

// Multi-device scaling summary for bench/sharded_match's --json report (the
// "sharded" top-level section; validated by scripts/check_bench_json.py).
// One entry per shard-count config over the same stream, plus the
// single-device peak cache footprint the per-shard slices compare against.
struct ShardedConfig {
  std::size_t shards = 0;
  std::string partition;  // "range" | "hash"
  // Peak DCSR blob bytes on any one shard across the run.
  std::uint64_t max_shard_cache_bytes = 0;
  std::uint64_t routed_joins = 0;
  std::uint64_t stitch_candidates = 0;
  double stitch_share = 0.0;       // stitch wall / match wall (0..1)
  double speedup_vs_1shard = 0.0;  // sim_total(1 shard) / sim_total(N)
  double sim_s = 0.0;              // total simulated time across the run
  std::uint64_t cut_edges = 0;     // after the last batch
  double imbalance = 0.0;          // after the last batch
};

struct ShardedSummary {
  std::uint64_t single_device_peak_cache_bytes = 0;
  std::vector<ShardedConfig> configs;
};

// Writes the --json report for a finished comparison:
//   {dataset, queries[], config{}, per_batch[], aggregate{wall_ms, sim_s,
//    latency_ms{p50, p95, p99}, cache{hits, misses, hit_rate}}}
// latency_ms holds nearest-rank percentiles over every per-batch wall time.
// `overload`, when non-null, adds the "overload" section described above;
// `sharded` likewise adds the "sharded" section. Schema changes must update
// docs/OBSERVABILITY.md and the checker in scripts/check_bench_json.py
// together.
void write_json_report(const std::string& path, const RunConfig& config,
                       const std::vector<std::string>& query_names,
                       const std::vector<EngineResult>& results,
                       const OverloadSummary* overload = nullptr,
                       const ShardedSummary* sharded = nullptr);

// Shared main() body for the bench binaries: runs `body`, converting any
// thrown gcsm::Error (e.g. a malformed --batch=abc) into the one-line
// `prog: error [CODE]: message` contract with exit code 1.
int bench_main(const char* prog, int argc, char** argv,
               const std::function<int(const CliArgs&)>& body);

}  // namespace gcsm::bench
