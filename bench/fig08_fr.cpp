// Paper Fig. 8: execution time for matching Q1-Q6 from a batch of 4096
// edges on the Friendster graph (FR-analog here), comparing GCSM with the
// zero-copy (ZP), degree-cache (Naive) and CPU baselines. CPU-access sizes
// are reported per row as in the paper's bar labels.
#include "harness.hpp"

static int run(const gcsm::CliArgs& args) {
  const auto config =
      gcsm::bench::RunConfig::from_cli(args, "FR", 4096, 1.0);
  return gcsm::bench::run_comparison(
      "Fig. 8 — Q1..Q6 on FR-analog, batch 4096",
      "GCSM 1.4-2.9x faster than ZP; Naive ~= ZP; CPU slowest; GCSM cuts "
      "CPU-access bytes 1.3-6.7x vs ZP",
      config, {1, 2, 3, 4, 5, 6},
      {gcsm::EngineKind::kGcsm, gcsm::EngineKind::kZeroCopy,
       gcsm::EngineKind::kNaiveDegree, gcsm::EngineKind::kCpu});
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig08_fr", argc, argv, run);
}
