// Paper Sec. VI-B (text): the unified-memory baseline is 69x-210x slower
// than naive zero-copy, because every fine-grained neighbor-list access
// migrates a whole 4-KiB page. This bench measures the UM/ZP simulated-time
// ratio directly (UM was left out of the paper's figures for being "out of
// scale").
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "FR", 4096, 1.0);
  const int query_index = static_cast<int>(args.get_int("query", 1));

  print_title("Sec. VI-B — unified-memory slowdown vs zero-copy",
              "UM 69x-210x slower than ZP");

  std::printf("%-8s %14s %14s %12s %14s\n", "graph", "ZP_sim_ms",
              "UM_sim_ms", "UM/ZP", "um_faults");
  for (const std::string& dataset :
       {std::string("FR"), std::string("SF3K")}) {
    RunConfig config = base_config;
    config.dataset = dataset;
    const PreparedStream stream = prepare_stream(config);
    const QueryGraph query = paper_query(query_index, config);

    const EngineResult zp =
        run_engine(EngineKind::kZeroCopy, stream, query, config);
    // Measure UM with its own pipeline (persistent device page cache sized
    // from the same scaled device budget as the cached engines).
    Pipeline um_pipe(stream.initial, query, [&] {
      PipelineOptions o;
      o.kind = EngineKind::kUnifiedMemory;
      o.workers = config.workers;
      o.cache_budget_bytes = resolve_cache_budget(config, stream.initial);
      return o;
    }());
    const BatchReport um = um_pipe.process_batch(stream.batches[0]);

    const double um_ms = um.sim_total_s() * 1e3;
    std::printf("%-8s %14.3f %14.3f %12.1f %14llu\n", dataset.c_str(),
                zp.sim_ms, um_ms, um_ms / zp.sim_ms,
                static_cast<unsigned long long>(um.traffic.um_faults));
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("um_slowdown", argc, argv, run);
}
