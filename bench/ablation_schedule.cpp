// Ablation: STMatch-style work stealing vs static partitioning of seed
// edges across simulated thread blocks. Power-law graphs make some seed
// edges (those touching hubs) orders of magnitude more expensive; static
// round-robin leaves blocks idle while one block finishes a hub — the
// load-balance problem STMatch's work stealing addresses (paper Sec. V-C).
//
// Metric: per-block busy time. Under work stealing max/mean stays near 1;
// under static partitioning it grows with the hub skew. (Wall time on this
// 1-core host reflects oversubscribed threads, so balance is the honest
// signal here.)
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "FR", 4096, 0.5);
  if (config.workers == 0) config.workers = 8;

  print_title("Ablation — work stealing vs static schedule",
              "work stealing keeps per-block busy times balanced "
              "(max/mean ~1); static partitioning leaves blocks idle behind "
              "hub-heavy seeds");

  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const QueryGraph query = paper_query(2, config);

  std::printf("%-14s %12s %16s %16s %14s\n", "schedule", "busy_sum_ms",
              "busy_max/mean", "busy_min/mean", "d_embeddings");
  for (const auto sched :
       {gpusim::Schedule::kWorkStealing, gpusim::Schedule::kStatic}) {
    DynamicGraph graph(stream.initial);
    graph.apply_batch(stream.batches[0]);
    gpusim::SimtExecutor exec(config.workers, sched);
    MatchEngine engine(query, exec, /*grain=*/1);
    HostPolicy policy(graph);
    gpusim::TrafficCounters ctr;
    std::vector<double> busy;
    const MatchStats stats = engine.match_batch_with_plans(
        engine.delta_plans(), graph, stream.batches[0], policy, ctr,
        nullptr, nullptr, &busy);

    const double sum = std::accumulate(busy.begin(), busy.end(), 0.0);
    const double mean = sum / static_cast<double>(busy.size());
    const double mx = *std::max_element(busy.begin(), busy.end());
    const double mn = *std::min_element(busy.begin(), busy.end());
    std::printf("%-14s %12.1f %16.2f %16.2f %14lld\n",
                sched == gpusim::Schedule::kWorkStealing ? "work-stealing"
                                                         : "static",
                sum * 1e3, mean > 0 ? mx / mean : 0.0,
                mean > 0 ? mn / mean : 0.0,
                static_cast<long long>(stats.signed_embeddings));
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("ablation_schedule", argc, argv, run);
}
