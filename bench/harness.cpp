#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "query/patterns.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace gcsm::bench {

RunConfig RunConfig::from_cli(const CliArgs& args,
                              std::string default_dataset,
                              std::size_t default_batch,
                              double default_scale) {
  RunConfig c;
  c.dataset = args.get("dataset", default_dataset);
  c.scale = args.get_double("scale", default_scale);
  c.num_labels =
      static_cast<std::uint32_t>(args.get_int("labels", c.num_labels));
  c.labeled_queries = c.num_labels > 1;
  c.batch_size =
      static_cast<std::size_t>(args.get_int("batch", default_batch));
  c.num_batches =
      static_cast<std::size_t>(args.get_int("batches", c.num_batches));
  c.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  // 0 = auto: ~10% of the graph's adjacency bytes (the paper's buffer is a
  // small fraction of its biggest graphs), resolved in prepare_stream.
  c.cache_budget_bytes =
      static_cast<std::uint64_t>(args.get_int("budget", 0)) << 20;
  c.num_walks = static_cast<std::uint64_t>(args.get_int("walks", 0));
  c.duration_s = args.get_double("duration-s", 0.0);
  if (c.duration_s < 0.0) {
    throw Error(ErrorCode::kConfig,
                "duration-s: " + args.get("duration-s", ""));
  }
  c.json_path = args.get("json", "");
  return c;
}

std::uint64_t resolve_cache_budget(const RunConfig& config,
                                   const CsrGraph& graph) {
  if (config.cache_budget_bytes != 0) return config.cache_budget_bytes;
  const std::uint64_t adjacency_bytes =
      2 * graph.num_edges() * sizeof(VertexId);
  return std::max<std::uint64_t>(2ull << 20, adjacency_bytes / 10);
}

PreparedStream prepare_stream(const RunConfig& config) {
  PreparedStream out;
  out.dataset = config.dataset;
  CsrGraph base = make_workload_graph(config.dataset, config.scale,
                                      config.num_labels, config.seed);
  const UpdateStreamOptions opt = default_stream_options(
      config.dataset, config.batch_size, config.seed + 1);
  UpdateStream stream = make_update_stream(base, opt);
  out.initial = std::move(stream.initial);
  out.batches = std::move(stream.batches);
  return out;
}

QueryGraph paper_query(int index, const RunConfig& config) {
  const QueryGraph q = make_pattern(index);
  return config.labeled_queries
             ? with_round_robin_labels(
                   q, static_cast<int>(config.num_labels))
             : q;
}

namespace {

PipelineOptions pipeline_options(EngineKind kind, const RunConfig& config,
                                 const CsrGraph& graph) {
  PipelineOptions opt;
  opt.kind = kind;
  opt.workers = config.workers;
  // VSGM semantically needs the whole k-hop set on the device, so it is
  // limited by device memory, not by the frequent-vertex buffer.
  opt.cache_budget_bytes = kind == EngineKind::kVsgm
                               ? opt.sim.device_memory_bytes
                               : resolve_cache_budget(config, graph);
  opt.estimator.num_walks = config.num_walks;
  opt.seed = config.seed + 13;
  return opt;
}

}  // namespace

EngineResult run_engine(EngineKind kind, const PreparedStream& stream,
                        const QueryGraph& query, const RunConfig& config) {
  Pipeline pipe(stream.initial, query,
                pipeline_options(kind, config, stream.initial));
  EngineResult r;
  r.engine = engine_kind_name(kind);
  const std::size_t n =
      std::min(config.num_batches, stream.batches.size());
  const gpusim::SimParams params = pipe.options().sim;
  const Timer cap;
  for (std::size_t i = 0; i < n; ++i) {
    if (config.duration_s > 0.0 && cap.seconds() >= config.duration_s) {
      // Wall-clock cap: stop cleanly mid-stream. Batches already processed
      // are fully committed; the report below simply covers fewer batches.
      std::printf("duration cap reached after %zu/%zu batches\n", i, n);
      break;
    }
    const BatchReport report = pipe.process_batch(stream.batches[i]);
    BatchRecord rec;
    rec.index = i;
    rec.wall_ms = report.wall_total_ms();
    rec.sim_s = report.sim_total_s();
    rec.embeddings = report.stats.signed_embeddings;
    rec.cache_hits = report.traffic.cache_hits;
    rec.cache_misses = report.traffic.cache_misses;
    rec.cached_vertices = report.cached_vertices;
    rec.retries = report.retries;
    rec.cpu_fallback = report.cpu_fallback;
    r.per_batch.push_back(rec);
    r.wall_ms += report.wall_total_ms();
    r.sim_ms += report.sim_total_s() * 1e3;
    r.sim_match_ms += report.sim_match_s * 1e3;
    r.sim_dc_ms += (report.sim_estimate_s + report.sim_pack_s) * 1e3;
    r.sim_fe_ms += report.sim_estimate_s * 1e3;
    r.cpu_access_mb +=
        static_cast<double>(report.traffic.cpu_access_bytes(params)) / 1e6;
    r.cache_hit_rate += report.cache_hit_rate();
    r.signed_embeddings += report.stats.signed_embeddings;
    r.cached_vertices += report.cached_vertices;
    r.wall_fe_ms += report.wall_estimate_ms;
    r.wall_dc_ms += report.wall_pack_ms;
    r.wall_reorg_ms += report.wall_reorg_ms;
  }
  // A duration-capped run processed fewer than n batches; average over what
  // actually ran.
  const std::size_t done = r.per_batch.size();
  const double inv = done == 0 ? 0.0 : 1.0 / static_cast<double>(done);
  r.wall_ms *= inv;
  r.sim_ms *= inv;
  r.sim_match_ms *= inv;
  r.sim_dc_ms *= inv;
  r.sim_fe_ms *= inv;
  r.cpu_access_mb *= inv;
  r.cache_hit_rate *= inv;
  r.wall_fe_ms *= inv;
  r.wall_dc_ms *= inv;
  r.wall_reorg_ms *= inv;
  r.cached_vertices =
      static_cast<std::uint64_t>(static_cast<double>(r.cached_vertices) * inv);
  r.batches = done;
  return r;
}

EngineResult run_rapidflow(const PreparedStream& stream,
                           const QueryGraph& query, const RunConfig& config) {
  RapidFlowLikeEngine rf(stream.initial, query, config.workers);
  EngineResult r;
  r.engine = "RF";
  const std::size_t n =
      std::min(config.num_batches, stream.batches.size());
  const gpusim::SimParams params;
  for (std::size_t i = 0; i < n; ++i) {
    const RapidFlowReport report = rf.process_batch(stream.batches[i]);
    r.wall_ms += report.wall_total_ms();
    // RF runs on the host; its simulated time is host-ops driven, matching
    // the CPU baseline's accounting.
    const gpusim::SimTime st = simulate_time(report.traffic, params);
    BatchRecord rec;
    rec.index = i;
    rec.wall_ms = report.wall_total_ms();
    rec.sim_s = st.host;
    rec.embeddings = report.stats.signed_embeddings;
    r.per_batch.push_back(rec);
    r.sim_ms += st.host * 1e3;
    r.sim_match_ms += st.host * 1e3;
    r.signed_embeddings += report.stats.signed_embeddings;
    r.cached_vertices = report.index_bytes;  // repurposed: index footprint
  }
  const double inv = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
  r.wall_ms *= inv;
  r.sim_ms *= inv;
  r.sim_match_ms *= inv;
  r.batches = n;
  return r;
}

void print_title(const std::string& title, const std::string& expectation) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!expectation.empty()) {
    std::printf("paper shape: %s\n", expectation.c_str());
  }
  std::printf(
      "================================================================\n");
}

void print_workload_line(const CsrGraph& graph, const std::string& name,
                         const RunConfig& config) {
  std::printf("%s  (scale=%.3g labels=%u batch=%zu batches=%zu seed=%llu)\n",
              graph.summary(name).c_str(), config.scale, config.num_labels,
              config.batch_size, config.num_batches,
              static_cast<unsigned long long>(config.seed));
}

void print_result_header() {
  std::printf("%-10s %-7s %12s %12s %12s %12s %10s %9s %14s %8s\n", "query",
              "engine", "sim_ms", "match_ms", "dc_ms", "wall_ms", "cpuMB",
              "hit%", "d_embeddings", "vs_1st");
}

void print_result_row(const std::string& query, const EngineResult& r,
                      double baseline_sim_ms) {
  std::printf("%-10s %-7s %12.3f %12.3f %12.3f %12.1f %10.2f %9.1f %14lld",
              query.c_str(), r.engine.c_str(), r.sim_ms, r.sim_match_ms,
              r.sim_dc_ms, r.wall_ms, r.cpu_access_mb,
              100.0 * r.cache_hit_rate,
              static_cast<long long>(r.signed_embeddings));
  if (baseline_sim_ms > 0.0 && r.sim_ms > 0.0) {
    // How much faster the first-listed engine (GCSM) is than this row.
    std::printf("    x%.2f", r.sim_ms / baseline_sim_ms);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void write_json_report(const std::string& path, const RunConfig& config,
                       const std::vector<std::string>& query_names,
                       const std::vector<EngineResult>& results,
                       const OverloadSummary* overload,
                       const ShardedSummary* sharded) {
  json::Writer w;
  w.begin_object();
  w.key("dataset").value(std::string_view(config.dataset));
  w.key("queries").begin_array();
  for (const std::string& q : query_names) w.value(std::string_view(q));
  w.end_array();
  w.key("config").begin_object();
  w.key("scale").value(config.scale);
  w.key("labels").value(static_cast<std::uint64_t>(config.num_labels));
  w.key("batch").value(static_cast<std::uint64_t>(config.batch_size));
  w.key("batches").value(static_cast<std::uint64_t>(config.num_batches));
  w.key("workers").value(static_cast<std::uint64_t>(config.workers));
  w.key("seed").value(config.seed);
  w.key("budget_bytes").value(config.cache_budget_bytes);
  w.key("walks").value(config.num_walks);
  w.key("duration_s").value(config.duration_s);
  w.end_object();

  double agg_wall_ms = 0.0;
  double agg_sim_s = 0.0;
  std::uint64_t agg_hits = 0;
  std::uint64_t agg_misses = 0;
  std::vector<double> batch_wall_ms;
  w.key("per_batch").begin_array();
  for (const EngineResult& r : results) {
    for (const BatchRecord& b : r.per_batch) {
      w.begin_object();
      w.key("query").value(std::string_view(r.query));
      w.key("engine").value(std::string_view(r.engine));
      w.key("batch").value(static_cast<std::uint64_t>(b.index));
      w.key("wall_ms").value(b.wall_ms);
      w.key("sim_s").value(b.sim_s);
      w.key("embeddings").value(static_cast<std::int64_t>(b.embeddings));
      w.key("retries").value(static_cast<std::uint64_t>(b.retries));
      w.key("cpu_fallback").value(b.cpu_fallback);
      w.key("cache").begin_object();
      w.key("hits").value(b.cache_hits);
      w.key("misses").value(b.cache_misses);
      const std::uint64_t total = b.cache_hits + b.cache_misses;
      w.key("hit_rate").value(
          total == 0 ? 0.0
                     : static_cast<double>(b.cache_hits) /
                           static_cast<double>(total));
      w.key("cached_vertices").value(b.cached_vertices);
      w.end_object();
      w.end_object();
      agg_wall_ms += b.wall_ms;
      agg_sim_s += b.sim_s;
      agg_hits += b.cache_hits;
      agg_misses += b.cache_misses;
      batch_wall_ms.push_back(b.wall_ms);
    }
  }
  w.end_array();

  // Nearest-rank percentiles over every per-batch wall time in the report
  // (all queries and engines pooled — the tail a stream consumer observes).
  std::sort(batch_wall_ms.begin(), batch_wall_ms.end());
  const auto percentile = [&batch_wall_ms](double p) {
    if (batch_wall_ms.empty()) return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(batch_wall_ms.size()) + 0.5);
    return batch_wall_ms[rank == 0 ? 0 : rank - 1];
  };

  w.key("aggregate").begin_object();
  w.key("wall_ms").value(agg_wall_ms);
  w.key("sim_s").value(agg_sim_s);
  w.key("latency_ms").begin_object();
  w.key("p50").value(percentile(0.50));
  w.key("p95").value(percentile(0.95));
  w.key("p99").value(percentile(0.99));
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(agg_hits);
  w.key("misses").value(agg_misses);
  const std::uint64_t agg_total = agg_hits + agg_misses;
  w.key("hit_rate").value(agg_total == 0
                              ? 0.0
                              : static_cast<double>(agg_hits) /
                                    static_cast<double>(agg_total));
  w.end_object();
  w.end_object();

  if (overload != nullptr) {
    w.key("overload").begin_object();
    w.key("offered").value(overload->offered);
    w.key("admitted").value(overload->admitted);
    w.key("committed").value(overload->committed);
    w.key("shed").value(overload->shed);
    w.key("rejected").value(overload->rejected);
    w.key("overload_factor").value(overload->overload_factor);
    w.key("goodput_batches_per_s").value(overload->goodput_batches_per_s);
    w.key("shed_rate").value(overload->shed_rate);
    w.key("latency_ms").begin_object();
    w.key("p50").value(overload->latency_p50_ms);
    w.key("p95").value(overload->latency_p95_ms);
    w.key("p99").value(overload->latency_p99_ms);
    w.end_object();
    w.end_object();
  }

  if (sharded != nullptr) {
    w.key("sharded").begin_object();
    w.key("single_device_peak_cache_bytes")
        .value(sharded->single_device_peak_cache_bytes);
    w.key("configs").begin_array();
    for (const ShardedConfig& c : sharded->configs) {
      w.begin_object();
      w.key("shards").value(static_cast<std::uint64_t>(c.shards));
      w.key("partition").value(std::string_view(c.partition));
      w.key("max_shard_cache_bytes").value(c.max_shard_cache_bytes);
      w.key("routed_joins").value(c.routed_joins);
      w.key("stitch_candidates").value(c.stitch_candidates);
      w.key("stitch_share").value(c.stitch_share);
      w.key("speedup_vs_1shard").value(c.speedup_vs_1shard);
      w.key("sim_s").value(c.sim_s);
      w.key("cut_edges").value(c.cut_edges);
      w.key("imbalance").value(c.imbalance);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  // Atomic (temp + rename): a consumer polling the report path never reads
  // a torn document.
  io::atomic_write_file(path, w.str() + "\n", /*sync=*/false);
  std::printf("json report written to %s\n", path.c_str());
}

int run_comparison(const std::string& title, const std::string& expectation,
                   const RunConfig& config, const std::vector<int>& queries,
                   const std::vector<EngineKind>& engines,
                   bool include_rapidflow) {
  print_title(title, expectation);
  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  print_result_header();
  std::vector<std::string> query_names;
  std::vector<EngineResult> all;
  for (const int qi : queries) {
    const QueryGraph query = paper_query(qi, config);
    query_names.push_back(query.name());
    double baseline = 0.0;
    for (std::size_t e = 0; e < engines.size(); ++e) {
      EngineResult r = run_engine(engines[e], stream, query, config);
      if (e == 0) baseline = r.sim_ms;
      print_result_row(query.name(), r, e == 0 ? 0.0 : baseline);
      r.query = query.name();
      all.push_back(std::move(r));
    }
    if (include_rapidflow) {
      EngineResult r = run_rapidflow(stream, query, config);
      print_result_row(query.name(), r, baseline);
      r.query = query.name();
      all.push_back(std::move(r));
    }
  }
  if (!config.json_path.empty()) {
    write_json_report(config.json_path, config, query_names, all);
  }
  return 0;
}

int bench_main(const char* prog, int argc, char** argv,
               const std::function<int(const CliArgs&)>& body) {
  try {
    const CliArgs args(argc, argv);
    return body(args);
  } catch (const Error& e) {
    // Exit-code contract (docs/ROBUSTNESS.md): 1 permanent, 2 config/parse,
    // 3 unrecoverable device.
    std::fprintf(stderr, "%s: error [%s]: %s\n", prog,
                 error_code_name(e.code()), e.what());
    return exit_code_for(e.code());
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: error [config]: %s\n", prog, e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", prog, e.what());
    return 1;
  }
}

}  // namespace gcsm::bench
