// Multi-device sharded matching scaling run (DESIGN.md, "Multi-device
// sharding") on the Fig. 9 workload (Q1..Q6 on the SF3K analog).
//
// One MultiQueryEngine run establishes the single-device peak DCSR cache
// footprint; the same stream then replays through ShardedMatchEngine at 1,
// 2, 4, and 8 shards (partition strategy from --partition, default hash).
// Counts are asserted bit-identical to the single-device run on every
// batch — this bench doubles as an end-to-end exactness check at bench
// scale. Reported per config: the peak cache bytes on any ONE shard (the
// per-device memory the partitioning buys back; strictly below the
// single-device peak at >= 4 shards), routed delta-join items, migrated
// stitch partials, the stitch share of the match wall, and the simulated
// speedup versus the 1-shard run — in the standard --json schema under the
// "sharded" section (validated by scripts/check_bench_json.py).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "server/multi_query_engine.hpp"
#include "shard/sharded_engine.hpp"
#include "util/error.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;

constexpr int kNumQueries = 6;

std::vector<QueryGraph> fig09_queries(const RunConfig& config) {
  std::vector<QueryGraph> out;
  for (int i = 1; i <= kNumQueries; ++i) out.push_back(paper_query(i, config));
  return out;
}

int run(const CliArgs& args) {
  auto config = RunConfig::from_cli(args, "SF3K", 4096, 1.0);
  if (config.num_batches < 2) config.num_batches = 2;
  const shard::PartitionStrategy strategy =
      shard::parse_partition_strategy(args.get("partition", "hash"));

  print_title("Sharded matching — Q1..Q6 on SF3K-analog, 1/2/4/8 shards",
              "per-shard peak cache < single-device peak from 4 shards; "
              "counts bit-identical throughout");
  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const std::uint64_t budget = resolve_cache_budget(config, stream.initial);
  const std::size_t batches =
      std::min(config.num_batches, stream.batches.size());

  // Single-device baseline: peak cache footprint and the per-batch signed
  // counts every sharded config must reproduce exactly.
  ShardedSummary summary;
  std::vector<std::int64_t> want_signed;
  {
    server::MultiQueryOptions opt;
    opt.kind = EngineKind::kGcsm;
    opt.cache_budget_bytes = budget;
    opt.estimator.num_walks = config.num_walks;
    opt.workers = config.workers;
    opt.seed = config.seed;
    server::MultiQueryEngine engine(stream.initial, opt);
    for (QueryGraph& q : fig09_queries(config)) {
      engine.register_query(std::move(q));
    }
    for (std::size_t k = 0; k < batches; ++k) {
      const server::ServerBatchReport r =
          engine.process_batch(stream.batches[k]);
      want_signed.push_back(r.shared.stats.signed_embeddings);
      summary.single_device_peak_cache_bytes = std::max(
          summary.single_device_peak_cache_bytes, r.shared.cache_bytes);
    }
  }
  std::printf("single device: peak cache %.2f MB over %zu batches\n\n",
              static_cast<double>(summary.single_device_peak_cache_bytes) /
                  1e6,
              batches);
  std::printf("%8s %10s %12s %12s %10s %8s %9s\n", "shards", "sim ms",
              "peak $/shard", "routed", "stitched", "share", "speedup");

  std::vector<EngineResult> results;
  double sim_1shard_s = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    shard::ShardedEngineOptions opt;
    opt.num_shards = shards;
    opt.partition = strategy;
    opt.kind = EngineKind::kGcsm;
    opt.cache_budget_bytes = budget;
    opt.estimator.num_walks = config.num_walks;
    opt.workers = config.workers;
    opt.seed = config.seed;
    shard::ShardedMatchEngine engine(stream.initial, opt);
    for (QueryGraph& q : fig09_queries(config)) {
      engine.register_query(std::move(q));
    }

    ShardedConfig c;
    c.shards = shards;
    c.partition = shard::partition_strategy_name(strategy);
    EngineResult res;
    res.engine = "sharded-" + std::to_string(shards);
    res.query = "Q1-Q6";
    double stitch_s = 0.0;
    double match_wall_s = 0.0;
    for (std::size_t k = 0; k < batches; ++k) {
      const shard::ShardedBatchReport r =
          engine.process_batch(stream.batches[k]);
      if (r.shared.stats.signed_embeddings != want_signed[k]) {
        throw Error(ErrorCode::kBatchRejected,
                    "sharded counts diverged from single device at batch " +
                        std::to_string(k) + " with " +
                        std::to_string(shards) + " shard(s)");
      }
      for (const BatchReport& sr : r.shards) {
        c.max_shard_cache_bytes =
            std::max(c.max_shard_cache_bytes, sr.cache_bytes);
      }
      c.routed_joins += r.stitch.routed_items;
      c.stitch_candidates += r.stitch.stitch_candidates;
      c.sim_s += r.shared.sim_total_s();
      c.cut_edges = r.cut_edges;
      c.imbalance = r.imbalance;
      stitch_s += r.stitch.stitch_seconds;
      match_wall_s += r.shared.wall_match_ms / 1e3;
      BatchRecord b;
      b.index = k;
      b.wall_ms = r.shared.wall_total_ms();
      b.sim_s = r.shared.sim_total_s();
      b.embeddings = r.shared.stats.signed_embeddings;
      b.cache_hits = r.shared.traffic.cache_hits;
      b.cache_misses = r.shared.traffic.cache_misses;
      b.cached_vertices = r.shared.cached_vertices;
      b.retries = r.shared.retries;
      b.cpu_fallback = r.shared.cpu_fallback;
      res.per_batch.push_back(b);
      res.wall_ms += b.wall_ms;
      res.sim_ms += b.sim_s * 1e3;
      res.signed_embeddings += b.embeddings;
    }
    res.batches = batches;
    res.wall_ms /= static_cast<double>(batches);
    res.sim_ms /= static_cast<double>(batches);
    c.stitch_share = match_wall_s > 0.0 ? stitch_s / match_wall_s : 0.0;
    if (shards == 1) sim_1shard_s = c.sim_s;
    c.speedup_vs_1shard = c.sim_s > 0.0 ? sim_1shard_s / c.sim_s : 0.0;
    std::printf("%8zu %10.3f %9.2f MB %12llu %10llu %7.1f%% %8.2fx\n",
                shards, c.sim_s * 1e3,
                static_cast<double>(c.max_shard_cache_bytes) / 1e6,
                static_cast<unsigned long long>(c.routed_joins),
                static_cast<unsigned long long>(c.stitch_candidates),
                100.0 * c.stitch_share, c.speedup_vs_1shard);
    summary.configs.push_back(std::move(c));
    results.push_back(std::move(res));
  }

  if (!config.json_path.empty()) {
    write_json_report(config.json_path, config, {"Q1-Q6"}, results,
                      /*overload=*/nullptr, &summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("sharded_match", argc, argv, run);
}
