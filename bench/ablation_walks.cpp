// Ablation: estimator walk count M vs cache quality and cost.
//
// Sweeps M and reports (i) coverage of the true top-k% accessed vertices
// (Fig. 15b's metric), (ii) the estimator's set-operation cost relative to
// exact matching, and (iii) the resulting GCSM cache hit rate. Demonstrates
// the Theorem-1 trade-off: ranking error shrinks as 1/M while merged-
// execution cost grows sublinearly in M.
#include <cstdio>
#include <numeric>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/frequency_estimator.hpp"
#include "harness.hpp"
#include "util/stats.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "SF3K", 4096, 0.5);

  print_title("Ablation — estimator walks M vs coverage and cost",
              "coverage rises with M (Thm. 1: error ~ 1/M); merged "
              "execution keeps cost sublinear in M");

  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const QueryGraph query = paper_query(1, config);

  DynamicGraph graph(stream.initial);
  graph.apply_batch(stream.batches[0]);

  // Ground truth access counts.
  gpusim::SimtExecutor exec(config.workers);
  MatchEngine engine(query, exec);
  CountingPolicy counting(graph);
  gpusim::TrafficCounters ctr;
  engine.match_batch(graph, stream.batches[0], counting, ctr);
  const auto truth = counting.access_counts();
  const std::uint64_t match_ops = ctr.snapshot().host_ops;
  const std::size_t touched = static_cast<std::size_t>(std::count_if(
      truth.begin(), truth.end(), [](std::uint64_t c) { return c > 0; }));

  std::printf("%12s %14s %14s %12s %12s\n", "walks", "cov@top1%",
              "cov@top5%", "est_ops", "ops/match");
  for (std::uint64_t m = 1 << 14; m <= (1u << 25); m <<= 2) {
    FrequencyEstimator est(query, {.num_walks = m});
    Rng rng(config.seed + 3);
    const EstimateResult r = est.estimate(graph, stream.batches[0], rng);
    const auto k1 = std::max<std::size_t>(1, touched / 100);
    const auto k5 = std::max<std::size_t>(1, touched / 20);
    std::printf("%12llu %13.1f%% %13.1f%% %12llu %11.1f%%\n",
                static_cast<unsigned long long>(m),
                100.0 * topk_coverage(truth, r.frequency, k1),
                100.0 * topk_coverage(truth, r.frequency, k5),
                static_cast<unsigned long long>(r.ops),
                100.0 * static_cast<double>(r.ops) /
                    static_cast<double>(match_ops));
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("ablation_walks", argc, argv, run);
}
