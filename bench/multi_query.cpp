// Multi-query serving: one shared engine vs N independent pipelines.
//
// Serves 1/2/4/8 standing patterns over the same update stream twice —
// once through a MultiQueryEngine (one graph, one estimation, one cache
// build, one pack/DMA per batch) and once as N independent single-query
// Pipelines — and reports wall time and cache bytes for both. The shared
// engine's advantage grows with N: the shared phases are paid once, and
// one arbitrated cache replaces N private ones. Per-query counts are
// bit-identical by construction (tests/multi_query_test.cpp).
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "server/multi_query_engine.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;

server::MultiQueryOptions multi_options(const RunConfig& config,
                                        std::uint64_t budget) {
  server::MultiQueryOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.cache_budget_bytes = budget;
  opt.estimator.num_walks = config.num_walks;
  opt.workers = config.workers;
  opt.seed = config.seed;
  return opt;
}

PipelineOptions single_options(const RunConfig& config,
                               std::uint64_t budget) {
  PipelineOptions opt;
  opt.kind = EngineKind::kGcsm;
  opt.cache_budget_bytes = budget;
  opt.estimator.num_walks = config.num_walks;
  opt.workers = config.workers;
  opt.seed = config.seed;
  return opt;
}

}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "FR", 4096, 1.0);

  print_title("Multi-query serving — shared engine vs independent pipelines",
              "shared wall time grows sublinearly in the query count (the "
              "update/estimate/pack phases are paid once) and cache bytes "
              "stay flat where N pipelines pay N private caches");

  const PreparedStream stream = prepare_stream(config);
  print_workload_line(stream.initial, config.dataset, config);
  const std::uint64_t budget = resolve_cache_budget(config, stream.initial);

  std::vector<std::string> query_names;
  std::vector<EngineResult> all;

  std::printf("%8s %14s %14s %9s %15s %15s\n", "queries", "shared_ms",
              "indep_ms", "speedup", "shared_cacheMB", "indep_cacheMB");
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    std::vector<QueryGraph> patterns;
    for (std::size_t i = 0; i < n; ++i) {
      patterns.push_back(paper_query(static_cast<int>(i % 6) + 1, config));
    }

    // Shared engine: every pattern registered against ONE graph + cache.
    server::MultiQueryEngine engine(stream.initial,
                                    multi_options(config, budget));
    for (const QueryGraph& q : patterns) engine.register_query(q);
    EngineResult shared;
    shared.engine = "shared";
    shared.query = "x" + std::to_string(n);
    double shared_cache_bytes = 0.0;
    for (std::size_t k = 0; k < config.num_batches; ++k) {
      const Timer t;
      const server::ServerBatchReport r =
          engine.process_batch(stream.batches[k]);
      BatchRecord rec;
      rec.index = k;
      rec.wall_ms = t.millis();
      rec.sim_s = r.shared.sim_total_s();
      rec.embeddings = r.shared.stats.signed_embeddings;
      rec.cached_vertices = r.shared.cached_vertices;
      rec.retries = r.shared.retries;
      for (const server::QueryReport& q : r.queries) {
        rec.sim_s += q.report.sim_match_s;
        rec.cache_hits += q.report.traffic.cache_hits;
        rec.cache_misses += q.report.traffic.cache_misses;
        rec.retries += q.report.retries;
        rec.cpu_fallback = rec.cpu_fallback || q.report.cpu_fallback;
      }
      shared_cache_bytes += static_cast<double>(r.shared.cache_bytes);
      shared.wall_ms += rec.wall_ms;
      shared.per_batch.push_back(rec);
    }

    // Independent: one full pipeline (graph copy, cache, estimator) each.
    std::vector<std::unique_ptr<Pipeline>> pipes;
    for (const QueryGraph& q : patterns) {
      pipes.push_back(std::make_unique<Pipeline>(
          stream.initial, q, single_options(config, budget)));
    }
    EngineResult indep;
    indep.engine = "independent";
    indep.query = "x" + std::to_string(n);
    double indep_cache_bytes = 0.0;
    for (std::size_t k = 0; k < config.num_batches; ++k) {
      BatchRecord rec;
      rec.index = k;
      const Timer t;
      for (auto& pipe : pipes) {
        const BatchReport r = pipe->process_batch(stream.batches[k]);
        rec.sim_s += r.sim_total_s();
        rec.embeddings += r.stats.signed_embeddings;
        rec.cache_hits += r.traffic.cache_hits;
        rec.cache_misses += r.traffic.cache_misses;
        rec.cached_vertices += r.cached_vertices;
        rec.retries += r.retries;
        rec.cpu_fallback = rec.cpu_fallback || r.cpu_fallback;
        indep_cache_bytes += static_cast<double>(r.cache_bytes);
      }
      rec.wall_ms = t.millis();
      indep.wall_ms += rec.wall_ms;
      indep.per_batch.push_back(rec);
    }

    const double batches = static_cast<double>(config.num_batches);
    std::printf("%8zu %14.2f %14.2f %8.2fx %15.2f %15.2f\n", n,
                shared.wall_ms, indep.wall_ms,
                shared.wall_ms > 0.0 ? indep.wall_ms / shared.wall_ms : 0.0,
                shared_cache_bytes / batches / 1e6,
                indep_cache_bytes / batches / 1e6);
    std::fflush(stdout);

    query_names.push_back(shared.query);
    all.push_back(std::move(shared));
    all.push_back(std::move(indep));
  }

  // Poison-tenant isolation: the x8 query set again, but one tenant armed
  // to fail 100% of its match attempts at the match.query fault site. With
  // `trip_after_failures = 1` the breaker quarantines it on the first batch
  // and every batch commits for the seven healthy tenants — the number to
  // watch is how close this wall time stays to the clean x8 row above
  // (docs/ROBUSTNESS.md, "Tenant isolation & circuit breaker").
  {
    std::vector<QueryGraph> patterns;
    for (std::size_t i = 0; i < 8; ++i) {
      patterns.push_back(paper_query(static_cast<int>(i % 6) + 1, config));
    }
    FaultInjector faults(config.seed);
    server::MultiQueryOptions opt = multi_options(config, budget);
    opt.fault_injector = &faults;
    opt.breaker.trip_after_failures = 1;
    opt.breaker.cooldown_batches = config.num_batches + 1;  // never re-joins
    server::MultiQueryEngine engine(stream.initial, opt);
    server::QueryId poison = 0;
    for (const QueryGraph& q : patterns) {
      const server::QueryId id = engine.register_query(q);
      if (poison == 0) poison = id;
    }
    FaultSpec spec;
    spec.probability = 1.0;
    spec.match_query_id = poison;
    faults.arm(fault_site::kMatchQuery, spec);

    EngineResult poisoned;
    poisoned.engine = "shared-poison";
    poisoned.query = "x8";
    std::uint64_t skipped_batches = 0;
    for (std::size_t k = 0; k < config.num_batches; ++k) {
      const Timer t;
      const server::ServerBatchReport r =
          engine.process_batch(stream.batches[k]);
      BatchRecord rec;
      rec.index = k;
      rec.wall_ms = t.millis();
      rec.sim_s = r.shared.sim_total_s();
      rec.embeddings = r.shared.stats.signed_embeddings;
      rec.cached_vertices = r.shared.cached_vertices;
      rec.retries = r.shared.retries;
      for (const server::QueryReport& q : r.queries) {
        rec.sim_s += q.report.sim_match_s;
        rec.cache_hits += q.report.traffic.cache_hits;
        rec.cache_misses += q.report.traffic.cache_misses;
        rec.retries += q.report.retries;
        if (q.skipped || q.tripped) ++skipped_batches;
      }
      poisoned.wall_ms += rec.wall_ms;
      poisoned.per_batch.push_back(rec);
    }
    std::printf(
        "\npoison isolation: x8 with q%u poisoned at match.query p=1.0 — "
        "wall %.2f ms, %llu query-batches quarantined, every batch "
        "committed\n",
        poison, poisoned.wall_ms,
        static_cast<unsigned long long>(skipped_batches));
    query_names.push_back(poisoned.query);
    all.push_back(std::move(poisoned));
  }

  if (!config.json_path.empty()) {
    write_json_report(config.json_path, config, query_names, all);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("multi_query", argc, argv, run);
}
