// Paper Fig. 11: counting all size-3, size-4 and size-5 motifs from a batch
// of 4096 edges on the road networks (PA/CA analogs). Road nets have tiny
// max degree, so this validates that GCSM's caching still wins when the
// degree distribution is NOT skewed (locality comes from the small batch).
#include <cstdio>

#include "harness.hpp"
#include "query/motifs.hpp"

namespace {

using namespace gcsm;
using namespace gcsm::bench;

EngineResult sum_over_motifs(EngineKind kind, const PreparedStream& stream,
                             const std::vector<QueryGraph>& motifs,
                             const RunConfig& config) {
  EngineResult total;
  total.engine = engine_kind_name(kind);
  for (const QueryGraph& motif : motifs) {
    const EngineResult r = run_engine(kind, stream, motif, config);
    total.wall_ms += r.wall_ms;
    total.sim_ms += r.sim_ms;
    total.sim_match_ms += r.sim_match_ms;
    total.sim_dc_ms += r.sim_dc_ms;
    total.cpu_access_mb += r.cpu_access_mb;
    total.cache_hit_rate += r.cache_hit_rate;
    total.signed_embeddings += r.signed_embeddings;
  }
  if (!motifs.empty()) {
    total.cache_hit_rate /= static_cast<double>(motifs.size());
  }
  return total;
}

}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig config = RunConfig::from_cli(args, "PA", 4096, 1.0);
  config.num_labels = static_cast<std::uint32_t>(args.get_int("labels", 1));
  config.labeled_queries = false;  // motifs are unlabeled, as in the paper
  const int max_motif_size = static_cast<int>(args.get_int("max-size", 5));

  print_title("Fig. 11 — size-3/4/5 motif counting on road networks",
              "GCSM 1.6-2.0x faster than ZP and 1.6-2.1x faster than Naive "
              "even without degree skew");

  const std::vector<EngineKind> engines{
      EngineKind::kGcsm, EngineKind::kZeroCopy, EngineKind::kNaiveDegree,
      EngineKind::kCpu};

  for (const std::string& dataset :
       {std::string("PA"), std::string("CA")}) {
    RunConfig c = config;
    c.dataset = dataset;
    const PreparedStream stream = prepare_stream(c);
    print_workload_line(stream.initial, dataset, c);
    print_result_header();
    for (std::uint32_t size = 3;
         size <= static_cast<std::uint32_t>(max_motif_size); ++size) {
      const auto motifs = all_motifs(size);
      double baseline = 0.0;
      for (std::size_t e = 0; e < engines.size(); ++e) {
        const EngineResult r = sum_over_motifs(engines[e], stream, motifs, c);
        if (e == 0) baseline = r.sim_ms;
        print_result_row("motif-" + std::to_string(size), r,
                         e == 0 ? 0.0 : baseline);
      }
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig11_roadnets", argc, argv, run);
}
