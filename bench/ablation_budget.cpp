// Ablation: GPU cache budget vs hit rate and simulated time, for the
// frequency-ranked (GCSM) and degree-ranked (Naive) policies. Shows the
// value of the estimator's ranking under tight budgets: GCSM reaches its
// peak hit rate with far fewer cached bytes because it spends the budget on
// the vertices that will actually be read.
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "FR", 4096, 1.0);

  print_title("Ablation — cache budget sweep (GCSM vs Naive ranking)",
              "GCSM saturates its hit rate at a small budget (it caches "
              "what will be read); degree ranking needs several times more "
              "bytes for the same hit rate");

  const PreparedStream stream = prepare_stream(base_config);
  print_workload_line(stream.initial, base_config.dataset, base_config);
  const QueryGraph query = paper_query(1, base_config);

  std::printf("%10s %14s %12s %14s %12s\n", "budget_MB", "GCSM_hit%",
              "GCSM_sim_ms", "Naive_hit%", "Naive_sim_ms");
  for (const std::uint64_t mb : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull}) {
    RunConfig config = base_config;
    config.cache_budget_bytes = mb << 20;
    const EngineResult g =
        run_engine(EngineKind::kGcsm, stream, query, config);
    const EngineResult n =
        run_engine(EngineKind::kNaiveDegree, stream, query, config);
    std::printf("%10llu %13.1f%% %12.3f %13.1f%% %12.3f\n",
                static_cast<unsigned long long>(mb),
                100.0 * g.cache_hit_rate, g.sim_ms, 100.0 * n.cache_hit_rate,
                n.sim_ms);
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("ablation_budget", argc, argv, run);
}
