// Paper Fig. 15:
//  (a) memory-access distribution of exact incremental matching: the top 5%
//      most-accessed vertices should account for >80% of neighbor-list
//      accesses (the observation GCSM's cache design rests on);
//  (b) cache coverage: |S ∩ T| / |S| where S is the true top-k% accessed
//      set and T the set the random-walk estimator selects for caching
//      (paper: ~100% at top-1%, >=75% at top-5%).
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/access_policy.hpp"
#include "core/cpu_engine.hpp"
#include "core/frequency_estimator.hpp"
#include "core/gpu_engine.hpp"
#include "harness.hpp"
#include "util/stats.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "FR", 4096, 1.0);
  const int query_index = static_cast<int>(args.get_int("query", 1));

  print_title("Fig. 15 — access distribution & estimator cache coverage",
              "(a) top-5% vertices >80% of accesses; (b) coverage ~100% at "
              "top-1%, >=75% at top-5%");

  for (const std::string& dataset :
       {std::string("FR"), std::string("SF3K"), std::string("SF10K")}) {
    RunConfig config = base_config;
    config.dataset = dataset;
    const PreparedStream stream = prepare_stream(config);
    print_workload_line(stream.initial, dataset, config);
    const QueryGraph query = paper_query(query_index, config);

    DynamicGraph graph(stream.initial);
    graph.apply_batch(stream.batches[0]);

    // Ground truth: exact matching instrumented with per-vertex counters.
    gpusim::SimtExecutor exec(config.workers);
    MatchEngine engine(query, exec);
    CountingPolicy counting(graph);
    gpusim::TrafficCounters ctr;
    engine.match_batch(graph, stream.batches[0], counting, ctr);
    const std::vector<std::uint64_t> truth = counting.access_counts();

    const std::uint64_t total_accesses =
        std::accumulate(truth.begin(), truth.end(), std::uint64_t{0});
    const std::size_t touched = static_cast<std::size_t>(std::count_if(
        truth.begin(), truth.end(), [](std::uint64_t c) { return c > 0; }));
    std::printf("  accessed vertices: %zu of %d, total accesses: %llu\n",
                touched, graph.num_vertices(),
                static_cast<unsigned long long>(total_accesses));

    // (a) cumulative access share among *touched* vertices.
    std::vector<std::uint64_t> touched_counts;
    touched_counts.reserve(touched);
    for (const std::uint64_t c : truth) {
      if (c > 0) touched_counts.push_back(c);
    }
    std::printf("  (a) access share of top-k%% touched vertices:");
    for (const double frac : {0.01, 0.02, 0.05, 0.10, 0.20}) {
      std::printf("  %.0f%%:%.1f%%", frac * 100,
                  100.0 * top_fraction_share(touched_counts, frac));
    }
    std::printf("\n");

    // (b) estimator coverage of the true top-k% sets.
    FrequencyEstimator estimator(query, {.num_walks = config.num_walks});
    Rng rng(config.seed + 5);
    const EstimateResult est =
        estimator.estimate(graph, stream.batches[0], rng);
    std::printf("  (b) estimator walks=%llu, coverage of true top-k%%:",
                static_cast<unsigned long long>(est.walks));
    for (const double frac : {0.01, 0.02, 0.03, 0.04, 0.05}) {
      const auto k = static_cast<std::size_t>(
          std::max(1.0, frac * static_cast<double>(touched)));
      std::printf("  %.0f%%:%.1f%%", frac * 100,
                  100.0 * topk_coverage(truth, est.frequency, k));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig15_access", argc, argv, run);
}
