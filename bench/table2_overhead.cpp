// Paper Table II: overhead of frequency estimation (FE) and data copying
// (DC) as a percentage of GCSM's total execution time, for Q1-Q6 on the
// three large-graph analogs. Expected shape: FE mostly <10% (up to ~17%)
// and shrinking for larger patterns; DC mostly <5%.
#include <cstdio>

#include "harness.hpp"

namespace {
using namespace gcsm;
using namespace gcsm::bench;
}  // namespace

static int run(const gcsm::CliArgs& args) {
  RunConfig base_config = RunConfig::from_cli(args, "FR", 4096, 1.0);

  print_title("Table II — FE / DC overhead as % of GCSM total time",
              "FE <10% in most cases (up to ~17%), decreasing with pattern "
              "size; DC <5% in most cases");

  std::printf("%-8s", "");
  for (const char* d : {"FR", "SF3K", "SF10K"}) {
    std::printf(" %8s-FE %8s-DC", d, d);
  }
  std::printf("\n");

  for (const int qi : {1, 2, 3, 4, 5, 6}) {
    std::printf("Q%-7d", qi);
    for (const std::string& dataset :
         {std::string("FR"), std::string("SF3K"), std::string("SF10K")}) {
      RunConfig config = base_config;
      config.dataset = dataset;
      if (dataset == "SF10K") config.batch_size *= 2;  // paper: 8192
      const PreparedStream stream = prepare_stream(config);
      const QueryGraph query = paper_query(qi, config);
      const EngineResult r =
          run_engine(EngineKind::kGcsm, stream, query, config);
      const double total = r.sim_ms > 0 ? r.sim_ms : 1e-12;
      const double fe_pct = 100.0 * r.sim_fe_ms / total;
      const double dc_pct = 100.0 * (r.sim_dc_ms - r.sim_fe_ms) / total;
      std::printf(" %10.1f%% %10.1f%%", fe_pct, dc_pct);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("table2_overhead", argc, argv, run);
}
