// Paper Fig. 9: execution time for matching Q1-Q6 from a batch of 4096
// edges on LDBC SF3K (R-MAT analog here).
#include "harness.hpp"

static int run(const gcsm::CliArgs& args) {
  const auto config =
      gcsm::bench::RunConfig::from_cli(args, "SF3K", 4096, 1.0);
  return gcsm::bench::run_comparison(
      "Fig. 9 — Q1..Q6 on SF3K-analog, batch 4096",
      "GCSM 1.4-2.9x faster than ZP; Naive ~= ZP; CPU slowest",
      config, {1, 2, 3, 4, 5, 6},
      {gcsm::EngineKind::kGcsm, gcsm::EngineKind::kZeroCopy,
       gcsm::EngineKind::kNaiveDegree, gcsm::EngineKind::kCpu});
}

int main(int argc, char** argv) {
  return gcsm::bench::bench_main("fig09_sf3k", argc, argv, run);
}
