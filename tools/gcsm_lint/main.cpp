// gcsm_lint driver: `gcsm_lint [ROOT]` lints the tree rooted at ROOT
// (default: the current directory), printing one `file:line: rule: message`
// diagnostic per violation and exiting nonzero if any were found.
// scripts/check.sh runs it from the repo root under the checks preset.
#include <cstdio>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: gcsm_lint [ROOT]\n"
          "Registry-backed contract linter for the GCSM tree "
          "(docs/ANALYSIS.md).\nScans ROOT/src against the "
          "ROOT/src/util/*.def registries and\nROOT/docs/OBSERVABILITY.md; "
          "prints `file:line: rule: message` per\nviolation and exits 1 if "
          "any were found.\n");
      return 0;
    }
    root = arg;
  }

  const auto diagnostics = gcsm::lint::run_lint({root});
  for (const auto& d : diagnostics) {
    std::printf("%s\n", gcsm::lint::format_diagnostic(d).c_str());
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "gcsm_lint: %zu violation%s in %s\n",
                 diagnostics.size(), diagnostics.size() == 1 ? "" : "s",
                 root.c_str());
    return 1;
  }
  return 0;
}
