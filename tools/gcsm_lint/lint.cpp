#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace gcsm::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Whitelists. Every entry is a reviewed exception; widen them only with a
// justification comment (the policy is documented in docs/ANALYSIS.md).

// Files allowed to use std::memory_order_relaxed: the lock-free metrics
// fast path and trace-span gate (relaxed by design — each metric update is
// an independent monotonic event), the cost model's per-thread op counters
// (summed only after join), and the access-policy traffic counters (same
// join-before-read discipline).
const std::set<std::string> kRelaxedAtomicFiles = {
    "src/util/metrics.hpp",      "src/util/metrics.cpp",
    "src/util/trace.hpp",        "src/util/trace.cpp",
    "src/gpusim/cost_model.hpp", "src/core/access_policy.cpp",
};

// Exception types `throw` may name: the gcsm::Error taxonomy (callers
// branch on ErrorCode; drivers map it to the exit-code contract) and
// CheckFailure (invariant violations from GCSM_CHECK/GCSM_ASSERT).
const std::set<std::string> kAllowedThrowTypes = {
    "Error",          "CrashError",        "DeviceOomError",
    "DeviceDmaError", "KernelLaunchError", "KernelTimeoutError",
    "CheckFailure",
};

// ---------------------------------------------------------------------------
// Tokenizer: just enough C++ lexing to separate identifiers, string
// literals, and punctuation, with comments and char literals dropped.

enum class TokKind { kIdent, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;  // for kString: the literal's value, unescaped quotes
  int line;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto peek = [&](std::size_t k) { return k < n ? text[k] : '\0'; };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '/' && peek(i + 1) == '/') {
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '/' && peek(i + 1) == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
    } else if (c == 'R' && peek(i + 1) == '"') {
      // Raw string literal: R"delim( ... )delim"
      const int start_line = line;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = j + 1;
      const std::size_t end = text.find(closer, body);
      const std::size_t stop = end == std::string::npos ? n : end;
      for (std::size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') ++line;
      }
      out.push_back({TokKind::kString,
                     text.substr(body, stop - body), start_line});
      i = stop == n ? n : stop + closer.size();
    } else if (c == '"') {
      const int start_line = line;
      std::string value;
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          value += text[i];
          value += text[i + 1];
          i += 2;
        } else {
          if (text[i] == '\n') ++line;  // unterminated; keep line count sane
          value += text[i++];
        }
      }
      ++i;  // closing quote
      out.push_back({TokKind::kString, value, start_line});
    } else if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      ++i;
    } else if (ident_char(c) &&
               std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::string ident;
      while (i < n && ident_char(text[i])) ident += text[i++];
      out.push_back({TokKind::kIdent, ident, line});
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Numbers (incl. 0x..., digit separators, suffixes) lex as one blob
      // we discard: no rule inspects them.
      while (i < n && (ident_char(text[i]) || text[i] == '.' ||
                       text[i] == '\'')) {
        ++i;
      }
    } else {
      std::string punct(1, c);
      if ((c == '-' && peek(i + 1) == '>') ||
          (c == ':' && peek(i + 1) == ':')) {
        punct += peek(i + 1);
        ++i;
      }
      ++i;
      out.push_back({TokKind::kPunct, punct, line});
    }
  }
  return out;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Registry parsing: X-macro .def files. Comments are stripped by the
// tokenizer, so the format comment's "dotted.name" example is not an entry.

struct RegistryEntry {
  std::string name;
  std::string symbol;  // generates the k<symbol> constant
  std::string kind;    // Counter/Gauge/Histogram for metrics; empty for faults
  int line = 0;
};

// Parses MACRO(args...) invocations, keeping the first string literal as
// the registered name. Metrics lead with (Kind, Symbol, "name", ...);
// fault sites with (Symbol, "name", ...).
std::vector<RegistryEntry> parse_def(const fs::path& path,
                                     const std::string& macro,
                                     bool kind_first) {
  std::vector<RegistryEntry> entries;
  if (!fs::exists(path)) return entries;
  const std::vector<Token> toks = tokenize(read_file(path));
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != macro) continue;
    RegistryEntry e;
    e.line = toks[i].line;
    int depth = 0;
    bool kind_pending = kind_first;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::kPunct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
      } else if (toks[j].kind == TokKind::kIdent && e.name.empty()) {
        // Identifiers before the name: kind first (metrics only), then
        // the symbol. Later identifiers (true/false) are ignored.
        if (kind_pending) {
          e.kind = toks[j].text;
          kind_pending = false;
        } else if (e.symbol.empty()) {
          e.symbol = toks[j].text;
        }
      } else if (toks[j].kind == TokKind::kString && e.name.empty()) {
        e.name = toks[j].text;
      }
    }
    if (!e.name.empty()) entries.push_back(e);
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Doc parsing: catalogue table rows are `| `name` | kind | meaning |`.

struct DocEntry {
  std::string name;
  int line = 0;
};

std::vector<DocEntry> parse_doc_table(const fs::path& path) {
  std::vector<DocEntry> entries;
  if (!fs::exists(path)) return entries;
  std::ifstream in(path);
  std::string row;
  int line = 0;
  while (std::getline(in, row)) {
    ++line;
    if (row.rfind("| `", 0) != 0) continue;
    const std::size_t open = 3;
    const std::size_t close = row.find('`', open);
    if (close == std::string::npos) continue;
    entries.push_back({row.substr(open, close - open), line});
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Per-file rules over the token stream.

struct FileContext {
  std::string rel;  // root-relative path with forward slashes
  const std::vector<Token>& toks;
  std::vector<Diagnostic>& out;
};

void emit(const FileContext& ctx, int line, const std::string& rule,
          const std::string& message) {
  ctx.out.push_back({ctx.rel, line, rule, message});
}

void check_registered_literals(
    const FileContext& ctx, const std::map<std::string, std::string>& metrics,
    const std::map<std::string, std::string>& faults) {
  for (const Token& t : ctx.toks) {
    if (t.kind != TokKind::kString) continue;
    if (const auto it = metrics.find(t.text); it != metrics.end()) {
      emit(ctx, t.line, "raw-metric-name",
           "string literal \"" + t.text +
               "\" spells a registered metric; use metric::k" + it->second +
               " from util/metric_names.def");
    } else if (const auto fit = faults.find(t.text); fit != faults.end()) {
      emit(ctx, t.line, "raw-fault-site",
           "string literal \"" + t.text +
               "\" spells a registered fault site; use fault_site::k" +
               fit->second + " from util/fault_sites.def");
    }
  }
}

void check_throws(const FileContext& ctx) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "throw") continue;
    // Walk the thrown expression's leading qualified-id: `throw A::B::C(...)`
    // keeps only C, the constructed type.
    std::string type;
    std::size_t j = i + 1;
    while (j < toks.size()) {
      if (toks[j].kind == TokKind::kIdent) {
        type = toks[j].text;
        ++j;
      } else if (toks[j].kind == TokKind::kPunct && toks[j].text == "::") {
        ++j;
      } else {
        break;
      }
    }
    if (type.empty()) continue;  // bare `throw;` rethrow
    if (kAllowedThrowTypes.count(type) != 0) continue;
    emit(ctx, toks[i].line, "raw-throw",
         "throw of " + type +
             " bypasses the gcsm::Error taxonomy; throw "
             "Error(ErrorCode::..., ...) so callers can branch on the "
             "code and drivers keep the exit-code contract");
  }
}

void check_relaxed_atomics(const FileContext& ctx) {
  if (kRelaxedAtomicFiles.count(ctx.rel) != 0) return;
  for (const Token& t : ctx.toks) {
    if (t.kind == TokKind::kIdent && t.text == "memory_order_relaxed") {
      emit(ctx, t.line, "stray-relaxed-atomic",
           "std::memory_order_relaxed outside the audited whitelist; "
           "default to sequential consistency or add this file to the "
           "whitelist in tools/gcsm_lint/lint.cpp with a justification");
    }
  }
}

void check_naked_locks(const FileContext& ctx) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct ||
        (toks[i].text != "." && toks[i].text != "->")) {
      continue;
    }
    const Token& name = toks[i + 1];
    if (name.kind != TokKind::kIdent ||
        (name.text != "lock" && name.text != "unlock")) {
      continue;
    }
    if (toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(" &&
        toks[i + 3].kind == TokKind::kPunct && toks[i + 3].text == ")") {
      emit(ctx, name.line, "naked-lock",
           "bare ." + name.text +
               "() call; hold mutexes through RAII "
               "(std::lock_guard / std::scoped_lock / std::unique_lock)");
    }
  }
}

}  // namespace

std::vector<Diagnostic> run_lint(const Options& options) {
  std::vector<Diagnostic> out;
  const fs::path root = options.root;

  // Registries and docs.
  const std::vector<RegistryEntry> metric_entries = parse_def(
      root / "src/util/metric_names.def", "GCSM_METRIC", /*kind_first=*/true);
  const std::vector<RegistryEntry> fault_entries =
      parse_def(root / "src/util/fault_sites.def", "GCSM_FAULT_SITE",
                /*kind_first=*/false);
  std::map<std::string, std::string> metric_names;  // name -> symbol
  for (const RegistryEntry& e : metric_entries) metric_names[e.name] = e.symbol;
  std::map<std::string, std::string> fault_names;  // name -> symbol
  for (const RegistryEntry& e : fault_entries) fault_names[e.name] = e.symbol;

  // doc-metric-sync: registry rows and catalogue rows must be the same set.
  const fs::path doc = root / "docs/OBSERVABILITY.md";
  if (fs::exists(doc)) {
    const std::vector<DocEntry> doc_entries = parse_doc_table(doc);
    std::set<std::string> documented;
    for (const DocEntry& e : doc_entries) documented.insert(e.name);
    for (const RegistryEntry& e : metric_entries) {
      if (documented.count(e.name) == 0) {
        out.push_back({"src/util/metric_names.def", e.line, "doc-metric-sync",
                       "registered metric \"" + e.name +
                           "\" has no row in the docs/OBSERVABILITY.md "
                           "catalogue table"});
      }
    }
    for (const DocEntry& e : doc_entries) {
      if (metric_names.count(e.name) == 0) {
        out.push_back({"docs/OBSERVABILITY.md", e.line, "doc-metric-sync",
                       "documented metric \"" + e.name +
                           "\" is not registered in "
                           "src/util/metric_names.def"});
      }
    }
  }

  // Token rules over every translation unit and header under src/.
  std::vector<fs::path> files;
  const fs::path src = root / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    const std::string rel =
        fs::relative(path, root).generic_string();
    const std::vector<Token> toks = tokenize(read_file(path));
    FileContext ctx{rel, toks, out};
    check_registered_literals(ctx, metric_names, fault_names);
    check_throws(ctx);
    check_relaxed_atomics(ctx);
    check_naked_locks(ctx);
  }

  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": " << d.rule << ": " << d.message;
  return os.str();
}

}  // namespace gcsm::lint
