// gcsm-lint: registry-backed contract linter for the GCSM tree.
//
// A project-specific static-analysis pass that keeps the cross-cutting
// contracts from drifting as hot paths get rewritten (docs/ANALYSIS.md,
// "Static analysis"). It is deliberately tokenizer-based — no libclang, no
// compile database — so it runs everywhere scripts/check.sh runs, in
// milliseconds, on a bare toolchain.
//
// Rules (each diagnostic is `file:line: rule: message`):
//
//   raw-metric-name      a string literal in src/ spells a metric name
//                        registered in src/util/metric_names.def; use the
//                        generated gcsm::metric::k* constant instead.
//   raw-fault-site       a string literal in src/ spells a fault site
//                        registered in src/util/fault_sites.def; use the
//                        generated gcsm::fault_site::k* constant instead.
//   doc-metric-sync      the registry and the docs/OBSERVABILITY.md metric
//                        catalogue table disagree (either direction).
//   raw-throw            a `throw` of an exception type outside the
//                        gcsm::Error taxonomy (Error and its subclasses,
//                        plus CheckFailure from util/check.hpp).
//   stray-relaxed-atomic std::memory_order_relaxed outside the audited
//                        whitelist (util/metrics, util/trace,
//                        gpusim/cost_model.hpp, core/access_policy.cpp).
//   naked-lock           a bare .lock()/.unlock() member call; mutexes must
//                        be held through RAII (std::lock_guard,
//                        std::scoped_lock, std::unique_lock).
//
// The linter scans every .cpp/.hpp under <root>/src. The .def registries
// are the only place a registered name may appear as a literal; docs and
// tests are free to spell names out (tests deliberately arm ad-hoc fault
// sites). Whitelists live in lint.cpp next to the rules they relax, so
// adding an entry is a reviewed one-line diff.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace gcsm::lint {

struct Diagnostic {
  std::string file;  // path relative to the lint root
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  // Tree to lint: expects <root>/src, the .def registries under
  // <root>/src/util/, and (optionally) <root>/docs/OBSERVABILITY.md.
  // Missing registries lint as empty; a missing doc skips doc-metric-sync.
  std::filesystem::path root;
};

// Runs every rule over the tree; diagnostics come back sorted by file,
// line, then rule, so output is deterministic.
std::vector<Diagnostic> run_lint(const Options& options);

// `file:line: rule: message` — the one-line format scripts and editors
// parse.
std::string format_diagnostic(const Diagnostic& d);

}  // namespace gcsm::lint
