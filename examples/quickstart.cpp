// Quickstart: the complete GCSM workflow on a small synthetic graph.
//
//   1. generate a data graph and an update stream,
//   2. build a GCSM pipeline for a query pattern,
//   3. process batches, printing incremental match counts and the
//      cache/traffic diagnostics that explain where the speedup comes from.
//
// Build & run:  ./build/examples/quickstart [--batches=4]
#include <cstdio>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/automorphism.hpp"
#include "query/patterns.hpp"
#include "query/plan.hpp"
#include "util/cli.hpp"

using namespace gcsm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto batches = static_cast<std::size_t>(args.get_int("batches", 4));

  // A power-law data graph: 20k vertices, ~80k edges, 4 vertex labels.
  Rng rng(args.get_int("seed", 42));
  const CsrGraph base = generate_barabasi_albert(20000, 4, 4, rng);
  std::printf("%s\n", base.summary("data graph").c_str());

  // Dynamic stream: 10%% of edges become updates, batches of 512.
  UpdateStreamOptions stream_opt;
  stream_opt.pool_edge_fraction = 0.10;
  stream_opt.batch_size = 512;
  const UpdateStream stream = make_update_stream(base, stream_opt);
  std::printf("update stream: %zu batches of <=%zu edges\n",
              stream.num_batches(), stream_opt.batch_size);

  // The query: Q1 ("house", 5 vertices) with wildcard labels.
  const QueryGraph query = make_pattern(1);
  std::printf("query %s: %u vertices, %u edges, diameter %u, |Aut|=%llu\n",
              query.name().c_str(), query.num_vertices(), query.num_edges(),
              query.diameter(),
              static_cast<unsigned long long>(count_automorphisms(query)));

  // Show the delta-join decomposition the engine will execute (Fig. 2).
  for (const MatchPlan& plan : make_delta_plans(query)) {
    std::printf("  %s\n", describe_plan(query, plan).c_str());
  }

  // GCSM pipeline: random-walk estimator + device cache + zero-copy
  // fallback, all on the simulated GPU.
  PipelineOptions opt;
  opt.kind = EngineKind::kGcsm;
  Pipeline pipeline(stream.initial, query, opt);

  std::int64_t total_embeddings = static_cast<std::int64_t>(
      pipeline.count_current_embeddings());
  const std::uint64_t aut = count_automorphisms(query);
  std::printf("\ninitial embeddings: %lld (%lld distinct subgraphs)\n",
              static_cast<long long>(total_embeddings),
              static_cast<long long>(total_embeddings / (std::int64_t)aut));

  for (std::size_t k = 0; k < std::min(batches, stream.num_batches()); ++k) {
    const BatchReport r = pipeline.process_batch(stream.batches[k]);
    total_embeddings += r.stats.signed_embeddings;
    std::printf(
        "batch %zu: %+lld embeddings (+%llu/-%llu), total %lld | "
        "cached %llu vertices (%.1f KB), hit rate %.1f%%, "
        "sim %.3f ms (FE %.1f%%), wall %.1f ms\n",
        k, static_cast<long long>(r.stats.signed_embeddings),
        static_cast<unsigned long long>(r.stats.positive),
        static_cast<unsigned long long>(r.stats.negative),
        static_cast<long long>(total_embeddings),
        static_cast<unsigned long long>(r.cached_vertices),
        static_cast<double>(r.cache_bytes) / 1e3,
        100.0 * r.cache_hit_rate(), r.sim_total_s() * 1e3,
        r.sim_total_s() > 0
            ? 100.0 * r.sim_estimate_s / r.sim_total_s()
            : 0.0,
        r.wall_total_ms());
  }

  // Validate against a from-scratch count on the final graph state.
  const std::uint64_t full = pipeline.count_current_embeddings();
  std::printf("\nfull recount on final graph: %llu -> %s\n",
              static_cast<unsigned long long>(full),
              static_cast<std::int64_t>(full) == total_embeddings
                  ? "incremental counts CONSISTENT"
                  : "MISMATCH (bug!)");
  return static_cast<std::int64_t>(full) == total_embeddings ? 0 : 1;
}
