// Rumor-pattern detection on a social message stream (the paper's other
// motivating scenario, Sec. I): users are vertices, message interactions are
// edges. A "rumor cascade" signature is a hub user whose audience members
// also interact with each other — a dense star-with-triangles pattern. CSM
// surfaces each new occurrence as interactions stream in, and this example
// also demonstrates engine comparison on live data: it runs the same stream
// through GCSM and the zero-copy baseline and reports the traffic saved.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/cli.hpp"

using namespace gcsm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  Rng rng(args.get_int("seed", 23));

  const CsrGraph social = generate_barabasi_albert(
      static_cast<VertexId>(args.get_int("users", 40000)), 6, 1, rng);
  std::printf("%s\n", social.summary("social graph").c_str());

  // Rumor signature: hub 0 connected to three audience members who form a
  // chain among themselves (a fan that re-shares along its own edges).
  const QueryGraph cascade = QueryGraph::from_edges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}}, {}, "cascade");

  UpdateStreamOptions stream_opt;
  stream_opt.pool_edge_fraction = 0.15;
  stream_opt.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 512));
  const UpdateStream feed = make_update_stream(social, stream_opt);

  auto make_pipeline = [&](EngineKind kind) {
    PipelineOptions opt;
    opt.kind = kind;
    return Pipeline(feed.initial, cascade, opt);
  };
  Pipeline gcsm_monitor = make_pipeline(EngineKind::kGcsm);
  Pipeline zp_monitor = make_pipeline(EngineKind::kZeroCopy);

  const std::size_t max_batches =
      static_cast<std::size_t>(args.get_int("batches", 6));
  const gpusim::SimParams params;
  double gcsm_ms = 0.0;
  double zp_ms = 0.0;
  std::uint64_t gcsm_bytes = 0;
  std::uint64_t zp_bytes = 0;

  std::printf("\n%5s %16s %16s %12s %12s\n", "batch", "cascades(+/-)",
              "GCSM_sim_ms", "ZP_sim_ms", "bytes_saved");
  for (std::size_t k = 0; k < std::min(max_batches, feed.num_batches());
       ++k) {
    const BatchReport g = gcsm_monitor.process_batch(feed.batches[k]);
    const BatchReport z = zp_monitor.process_batch(feed.batches[k]);
    if (g.stats.signed_embeddings != z.stats.signed_embeddings) {
      std::printf("ENGINE DISAGREEMENT — bug!\n");
      return 1;
    }
    gcsm_ms += g.sim_total_s() * 1e3;
    zp_ms += z.sim_total_s() * 1e3;
    const std::uint64_t gb = g.traffic.cpu_access_bytes(params);
    const std::uint64_t zb = z.traffic.cpu_access_bytes(params);
    gcsm_bytes += gb;
    zp_bytes += zb;
    std::printf("%5zu      +%-6llu -%-6llu %14.3f %12.3f %11.1f%%\n", k,
                static_cast<unsigned long long>(g.stats.positive),
                static_cast<unsigned long long>(g.stats.negative),
                g.sim_total_s() * 1e3, z.sim_total_s() * 1e3,
                zb > 0 ? 100.0 * (1.0 - static_cast<double>(gb) /
                                            static_cast<double>(zb))
                       : 0.0);
  }

  std::printf(
      "\ntotals: GCSM %.3f ms vs ZP %.3f ms simulated (x%.2f); CPU bytes "
      "%.2f MB vs %.2f MB (%.1fx less PCIe traffic)\n",
      gcsm_ms, zp_ms, zp_ms / gcsm_ms,
      static_cast<double>(gcsm_bytes) / 1e6,
      static_cast<double>(zp_bytes) / 1e6,
      static_cast<double>(zp_bytes) / static_cast<double>(gcsm_bytes));
  return 0;
}
