// csm_cli — general-purpose command-line driver for the GCSM library.
//
// Runs continuous subgraph matching on a generated or loaded graph with any
// engine, printing per-batch reports. Examples:
//
//   csm_cli --dataset=FR --query=Q3 --engine=gcsm --batches=4
//   csm_cli --dataset=LJ --query=triangle --engine=zp --batch=1024
//   csm_cli --graph=my_graph.txt --query=clique4 --engine=cpu --list=10
//   csm_cli --dataset=AZ --query=Q1 --engine=rf        # RapidFlow-like
//   csm_cli --dataset=PA --save-graph=pa.bin           # just materialize
//   csm_cli --dataset=AZ --query=Q2 --faults=0.05      # fault-injected run
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/rapidflow_like.hpp"
#include "core/workloads.hpp"
#include "graph/graph_io.hpp"
#include "graph/update_stream.hpp"
#include "query/automorphism.hpp"
#include "query/patterns.hpp"
#include "server/admission.hpp"
#include "server/multi_query_engine.hpp"
#include "server/traffic_gen.hpp"
#include "shard/sharded_engine.hpp"
#include "util/cli.hpp"
#include "util/durable_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

using namespace gcsm;

namespace {

void write_text_file(const std::string& path, const std::string& content) {
  // Atomic (temp + rename): a reader polling the report never sees a torn
  // file, even if the process dies mid-write.
  io::atomic_write_file(path, content + "\n", /*sync=*/false);
}

// --metrics-json / --trace-json sinks (docs/OBSERVABILITY.md), shared by
// the pipeline and RapidFlow-like exits.
void write_observability(const CliArgs& args,
                         const trace::TraceCollector& collector) {
  if (args.has("metrics-json")) {
    const std::string path = args.get("metrics-json", "metrics.json");
    write_text_file(path, metrics::Registry::global().snapshot().to_json());
    std::printf("metrics written to %s\n", path.c_str());
  }
  if (args.has("trace-json")) {
    const std::string path = args.get("trace-json", "trace.json");
    write_text_file(path, collector.to_chrome_json());
    std::printf("trace written to %s\n", path.c_str());
  }
}

// --duration-s=F: wall-clock cap on the batch loop (0 = unlimited). A
// capped run stops cleanly between batches: the batch in flight finishes
// and commits (WAL flushed), then the loop prints "duration cap reached"
// and exits 0 with whatever reports it produced. scripts/soak.sh uses this
// to bound every pass instead of killing the process.
double parse_duration_s(const CliArgs& args) {
  const double duration_s = args.get_double("duration-s", 0.0);
  if (duration_s < 0.0) {
    throw Error(ErrorCode::kConfig,
                "duration-s: " + args.get("duration-s", ""));
  }
  return duration_s;
}

QueryGraph parse_query(const std::string& name, int labels) {
  QueryGraph q;
  if (name.size() == 2 && (name[0] == 'Q' || name[0] == 'q')) {
    q = make_pattern(name[1] - '0');
  } else if (name == "triangle") {
    q = make_triangle();
  } else if (name == "diamond") {
    q = make_fig1_diamond();
  } else if (name.rfind("clique", 0) == 0) {
    q = make_clique(static_cast<std::uint32_t>(std::stoi(name.substr(6))));
  } else if (name.rfind("cycle", 0) == 0) {
    q = make_cycle(static_cast<std::uint32_t>(std::stoi(name.substr(5))));
  } else if (name.rfind("path", 0) == 0) {
    q = make_path(static_cast<std::uint32_t>(std::stoi(name.substr(4))));
  } else if (name.rfind("star", 0) == 0) {
    q = make_star(static_cast<std::uint32_t>(std::stoi(name.substr(4))));
  } else {
    throw Error(ErrorCode::kConfig, "unknown query: " + name);
  }
  return labels > 1 ? with_round_robin_labels(q, labels) : q;
}

// Multi-query serving mode: two or more --query flags share one engine
// (docs/MULTI_QUERY.md). A single --query keeps the classic pipeline path
// below, byte-for-byte.
int run_multi_query(const CliArgs& args, const UpdateStream& stream,
                    const std::vector<std::string>& query_names, int labels,
                    std::uint64_t seed, std::size_t max_batches);

EngineKind parse_engine(const std::string& name) {
  if (name == "gcsm") return EngineKind::kGcsm;
  if (name == "zp") return EngineKind::kZeroCopy;
  if (name == "um") return EngineKind::kUnifiedMemory;
  if (name == "naive") return EngineKind::kNaiveDegree;
  if (name == "vsgm") return EngineKind::kVsgm;
  if (name == "cpu") return EngineKind::kCpu;
  throw Error(ErrorCode::kConfig, "unknown engine: " + name);
}

int usage() {
  std::printf(
      "usage: csm_cli [--dataset=AZ|PA|CA|LJ|FR|SF3K|SF10K | --graph=FILE]\n"
      "               [--query=Q1..Q6|triangle|diamond|cliqueN|cycleN|pathN|"
      "starN]\n"
      "               [--engine=gcsm|zp|um|naive|vsgm|cpu|rf]\n"
      "               [--batch=N] [--batches=N] [--scale=F] [--labels=N]\n"
      "               [--budget=MB] [--walks=N] [--seed=N] [--list=N]\n"
      "               [--save-graph=FILE]\n"
      "               [--faults=P] [--fault-seed=N]   (arm fault injection\n"
      "                with probability P at every site; see "
      "docs/ROBUSTNESS.md)\n"
      "               [--metrics-json=FILE]  (dump the metrics registry)\n"
      "               [--trace-json=FILE]    (chrome://tracing span export;\n"
      "                see docs/OBSERVABILITY.md)\n"
      "               [--wal-dir=DIR]        (crash durability: write-ahead\n"
      "                log + snapshots in DIR; see docs/ROBUSTNESS.md)\n"
      "               [--snapshot-every=N]   (snapshot + compact the WAL\n"
      "                every N batches; default 8, 0 = never)\n"
      "               [--recover]            (replay committed state from\n"
      "                --wal-dir before processing; resumes the stream\n"
      "                after the last committed batch)\n"
      "               [--poison-query=ID]    (multi-query only: arm the\n"
      "                match.query fault site at p=1.0 against query ID --\n"
      "                a poison tenant; see docs/ROBUSTNESS.md)\n"
      "               [--breaker-trip-after=K] [--breaker-cooldown=N]\n"
      "               [--debt-window=N] [--match-deadline-ms=T]\n"
      "                (multi-query circuit breaker tuning;\n"
      "                docs/ROBUSTNESS.md \"Tenant isolation\")\n"
      "               [--duration-s=F]       (wall-clock cap: stop cleanly\n"
      "                between batches after F seconds, committed state\n"
      "                flushed; used by scripts/soak.sh)\n"
      "               [--shards=N] [--partition=range|hash]\n"
      "                (multi-device sharded matching: partition the data\n"
      "                graph across N simulated devices, route delta joins\n"
      "                to their anchor's owner shard, stitch cross-shard\n"
      "                partials at branch vertices; counts stay bit-identical\n"
      "                to the single-device engines; see DESIGN.md\n"
      "                \"Multi-device sharding\")\n"
      "               [--max-queue=N] [--admit-rate=F]\n"
      "               [--shed-policy=oldest|lowest-impact]\n"
      "               [--shed-deadline-ms=T]\n"
      "               [--arrival=uniform|poisson|bursty] "
      "[--arrival-rate=F]\n"
      "                (multi-query only: bounded admission queue, load\n"
      "                shedding, and timed arrivals in front of the engine;\n"
      "                docs/ROBUSTNESS.md \"Overload & admission "
      "control\")\n"
      "exit codes: 0 ok, 1 permanent error, 2 config/parse error,\n"
      "            3 unrecoverable device error\n"
      "Repeat --query to serve several patterns from one shared engine\n"
      "(one graph, one estimation, one cache build per batch; see\n"
      "docs/MULTI_QUERY.md). A single --query keeps the classic pipeline.\n");
  return 2;
}

int run_multi_query(const CliArgs& args, const UpdateStream& stream,
                    const std::vector<std::string>& query_names, int labels,
                    std::uint64_t seed, std::size_t max_batches) {
  const std::string engine = args.get("engine", "gcsm");
  if (engine == "rf") {
    throw Error(ErrorCode::kConfig,
                "--engine=rf serves one query; repeated --query needs a "
                "pipeline engine (gcsm|zp|um|naive|vsgm|cpu)");
  }

  trace::TraceCollector collector;
  if (args.has("trace-json")) trace::set_collector(&collector);

  server::MultiQueryOptions mopt;
  mopt.kind = parse_engine(engine);
  mopt.seed = seed + 2;
  if (args.has("budget")) {
    mopt.cache_budget_bytes =
        static_cast<std::uint64_t>(args.get_int("budget", 256)) << 20;
  }
  mopt.estimator.num_walks =
      static_cast<std::uint64_t>(args.get_int("walks", 0));
  if (args.has("wal-dir")) {
    mopt.durability.wal_dir = args.get("wal-dir", "wal");
    mopt.durability.snapshot_interval =
        static_cast<std::uint64_t>(args.get_int("snapshot-every", 8));
    mopt.durability.recover_on_start = args.has("recover");
  }
  mopt.breaker.trip_after_failures =
      static_cast<std::uint64_t>(args.get_int("breaker-trip-after", 2));
  mopt.breaker.cooldown_batches =
      static_cast<std::uint64_t>(args.get_int("breaker-cooldown", 4));
  mopt.breaker.max_debt_batches =
      static_cast<std::uint64_t>(args.get_int("debt-window", 64));
  mopt.breaker.match_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("match-deadline-ms", 0));
  FaultInjector faults(
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0x5eed)));
  const double fault_p = args.get_double("faults", 0.0);
  if (fault_p > 0.0) {
    faults.arm_all(fault_p);
    mopt.fault_injector = &faults;
  }
  const int poison_query = args.get_int("poison-query", 0);
  if (poison_query > 0) {
    FaultSpec poison;
    poison.probability = 1.0;
    poison.match_query_id = static_cast<std::uint64_t>(poison_query);
    faults.arm(fault_site::kMatchQuery, poison);
    mopt.fault_injector = &faults;
  }
  server::MultiQueryEngine srv(stream.initial, mopt);

  const auto list_limit = static_cast<std::size_t>(args.get_int("list", 0));
  std::size_t listed = 0;
  const auto make_sink = [&listed, list_limit](server::QueryId id) {
    if (list_limit == 0) return MatchSink{};
    return MatchSink{[&listed, list_limit, id](const MatchPlan& plan,
                                               std::span<const VertexId> b,
                                               int sign) {
      if (listed >= list_limit) return;
      ++listed;
      std::printf("  [q%u] %c match:", id, sign > 0 ? '+' : '-');
      for (std::size_t pos = 0; pos < b.size(); ++pos) {
        std::printf(" u%u->%d", plan.vertex_order[pos], b[pos]);
      }
      std::printf("\n");
    }};
  };

  if (srv.registry().empty()) {
    for (const std::string& name : query_names) {
      QueryGraph q = parse_query(name, labels);
      std::printf("query %s: %u vertices %u edges |Aut|=%llu\n",
                  q.name().c_str(), q.num_vertices(), q.num_edges(),
                  static_cast<unsigned long long>(count_automorphisms(q)));
      const server::QueryId id = srv.register_query(std::move(q));
      srv.attach_sink(id, make_sink(id));
    }
  } else {
    // --recover restored the registry; re-attach sinks, don't re-register.
    for (const server::RegisteredQuery& e : srv.registry().entries()) {
      std::printf("query q%u %s: restored from registry\n", e.id,
                  e.query.name().c_str());
      srv.attach_sink(e.id, make_sink(e.id));
    }
  }

  // With --recover, resume submission after the committed prefix, exactly
  // as the single-query path does.
  std::size_t start_batch = 0;
  if (mopt.durability.enabled() && mopt.durability.recover_on_start) {
    const RecoveredState& rec = srv.recovery_info();
    const durable::DurableCounters& cum = srv.cumulative();
    start_batch = static_cast<std::size_t>(cum.batches_committed);
    std::printf(
        "recovered: %llu batch(es) committed (%s snapshot, %zu replayed, "
        "%zu uncommitted dropped)%s; %zu queries; resuming at batch %zu\n",
        static_cast<unsigned long long>(cum.batches_committed),
        rec.snapshot_loaded ? "with" : "no", rec.replay.size(),
        rec.dropped_uncommitted,
        rec.wal_tail_truncated ? " [WAL tail truncated]" : "",
        srv.registry().size(), start_batch);
  }

  const auto print_batch = [](std::size_t k,
                              const server::ServerBatchReport& r) {
    std::printf(
        "batch %zu: %+lld embeddings across %zu queries | shared sim "
        "(FE %.3f, DC %.3f, reorg %.3f ms) | wall %.1f ms | cache %llu "
        "vtx%s\n",
        k, static_cast<long long>(r.shared.stats.signed_embeddings),
        r.queries.size(), r.shared.sim_estimate_s * 1e3,
        r.shared.sim_pack_s * 1e3, r.shared.sim_reorg_s * 1e3,
        r.shared.wall_total_ms(),
        static_cast<unsigned long long>(r.shared.cached_vertices),
        r.cache_dropped ? " [cache dropped]" : "");
    for (const server::QueryReport& q : r.queries) {
      std::printf(
          "  q%u %s: %+lld (+%llu/-%llu) | match sim %.3f ms | hit "
          "%.1f%%%s%s\n",
          q.id, q.name.c_str(),
          static_cast<long long>(q.report.stats.signed_embeddings),
          static_cast<unsigned long long>(q.report.stats.positive),
          static_cast<unsigned long long>(q.report.stats.negative),
          q.report.sim_match_s * 1e3, 100.0 * q.report.cache_hit_rate(),
          q.report.retries > 0 ? " [retried]" : "",
          q.report.cpu_fallback ? " [CPU fallback]" : "");
      if (q.tripped || q.skipped || q.probed || q.rejoined) {
        std::printf("    breaker:%s%s%s%s%s\n", q.tripped ? " tripped" : "",
                    q.skipped ? " quarantined" : "", q.probed ? " probed" : "",
                    q.rejoined ? " rejoined" : "",
                    q.rebaselined ? " (re-baselined)" : "");
      }
    }
    if (r.shared.retries > 0 || r.shared.degradation_level > 0 ||
        !r.shared.quarantine.empty()) {
      std::printf(
          "  recovery: %u shared retries, degradation L%u (budget %llu B), "
          "%llu faults observed, %llu records quarantined\n",
          r.shared.retries, r.shared.degradation_level,
          static_cast<unsigned long long>(r.shared.effective_cache_budget),
          static_cast<unsigned long long>(r.shared.faults_observed),
          static_cast<unsigned long long>(r.shared.quarantine.total()));
    }
  };

  const double duration_s = parse_duration_s(args);
  const Timer wall;

  // --- overload protection (docs/ROBUSTNESS.md, "Overload & admission
  // control"): any admission flag puts the bounded-queue controller in
  // front of the engine. Without --arrival-rate each batch arrives exactly
  // as the server frees (pass-through pacing); with it, arrivals follow the
  // seeded traffic generator and the queue can build, shed, and reject.
  const bool admission_on =
      args.has("max-queue") || args.has("admit-rate") ||
      args.has("shed-policy") || args.has("shed-deadline-ms") ||
      args.has("arrival") || args.has("arrival-rate");
  if (admission_on) {
    const std::int64_t max_queue = args.get_int("max-queue", 64);
    if (max_queue <= 0) {
      throw Error(ErrorCode::kConfig,
                  "max-queue: " + args.get("max-queue", ""));
    }
    const double admit_rate = args.get_double("admit-rate", 0.0);
    if (admit_rate < 0.0) {
      throw Error(ErrorCode::kConfig,
                  "admit-rate: " + args.get("admit-rate", ""));
    }
    const double shed_deadline_ms = args.get_double("shed-deadline-ms", 0.0);
    if (shed_deadline_ms < 0.0) {
      throw Error(ErrorCode::kConfig,
                  "shed-deadline-ms: " + args.get("shed-deadline-ms", ""));
    }
    const double arrival_rate = args.get_double("arrival-rate", 0.0);
    if (arrival_rate < 0.0) {
      throw Error(ErrorCode::kConfig,
                  "arrival-rate: " + args.get("arrival-rate", ""));
    }
    server::AdmissionOptions aopt;
    aopt.max_queue = static_cast<std::size_t>(max_queue);
    aopt.admit_rate = admit_rate;
    aopt.shed_policy =
        server::parse_shed_policy(args.get("shed-policy", "oldest"));
    aopt.queue_deadline_s = shed_deadline_ms / 1e3;
    const server::ArrivalKind arrival =
        server::parse_arrival(args.get("arrival", "poisson"));
    server::AdmissionController ctrl(srv, aopt);

    std::vector<server::TrafficItem> schedule;
    if (arrival_rate > 0.0) {
      server::TrafficOptions topt;
      topt.arrival = arrival;
      topt.rate = arrival_rate;
      topt.num_vertices =
          static_cast<std::uint64_t>(stream.initial.num_vertices());
      topt.seed = seed + 3;
      server::TrafficGenerator gen(topt);
      const std::vector<EdgeBatch> base(
          stream.batches.begin() + static_cast<std::ptrdiff_t>(start_batch),
          stream.batches.begin() + static_cast<std::ptrdiff_t>(max_batches));
      schedule = gen.generate(base);
    }

    const auto sink = [&](server::AdmissionCommit&& c) {
      print_batch(start_batch + static_cast<std::size_t>(c.ordinal) - 1,
                  c.report);
    };
    for (std::size_t k = start_batch; k < max_batches; ++k) {
      if (duration_s > 0.0 && wall.seconds() >= duration_s) {
        std::printf("duration cap reached after %zu/%zu batches\n", k,
                    max_batches);
        break;
      }
      const std::size_t j = k - start_batch;
      const double now = j < schedule.size()
                             ? schedule[j].arrival_s
                             : ctrl.server_free_s();
      ctrl.pump(now, sink);
      EdgeBatch batch = j < schedule.size() ? std::move(schedule[j].batch)
                                            : stream.batches[k];
      const std::uint32_t source =
          j < schedule.size() ? schedule[j].source : 0;
      if (ctrl.offer(std::move(batch), source, now) !=
          server::AdmitResult::kAdmitted) {
        std::printf("batch %zu: rejected at admission (queue full)\n", k);
      }
    }
    ctrl.finish(sink);
    const server::AdmissionStats& st = ctrl.stats();
    std::printf(
        "admission: offered %llu = admitted %llu + rejected %llu; admitted "
        "= committed %llu + shed %llu | walk scale %.3f\n",
        static_cast<unsigned long long>(st.offered),
        static_cast<unsigned long long>(st.admitted),
        static_cast<unsigned long long>(st.rejected),
        static_cast<unsigned long long>(st.committed),
        static_cast<unsigned long long>(st.shed), ctrl.walk_scale());
  } else {
    for (std::size_t k = start_batch; k < max_batches; ++k) {
      if (duration_s > 0.0 && wall.seconds() >= duration_s) {
        std::printf("duration cap reached after %zu/%zu batches\n", k,
                    max_batches);
        break;
      }
      print_batch(k, srv.process_batch(stream.batches[k]));
    }
  }
  trace::set_collector(nullptr);
  write_observability(args, collector);
  return 0;
}

// Multi-device sharded mode (--shards / --partition): the data graph is
// partitioned across N simulated devices and every registered query is
// served by the ShardedMatchEngine (DESIGN.md, "Multi-device
// sharding"). Counts stay bit-identical to the single-device engines.
int run_sharded(const CliArgs& args, const UpdateStream& stream,
                const std::vector<std::string>& query_names, int labels,
                std::uint64_t seed, std::size_t max_batches) {
  const std::int64_t shards = args.get_int("shards", 2);
  if (shards <= 0) {
    throw Error(ErrorCode::kConfig, "shards: " + args.get("shards", ""));
  }
  const std::string engine = args.get("engine", "gcsm");
  if (engine == "rf") {
    throw Error(ErrorCode::kConfig,
                "--engine=rf is single-device; --shards needs a pipeline "
                "engine (gcsm|zp|um|naive|vsgm|cpu)");
  }
  if (args.has("recover")) {
    throw Error(ErrorCode::kConfig,
                "--recover is not wired for --shards; replay the WAL "
                "through a single-device run (counts are identical)");
  }

  trace::TraceCollector collector;
  if (args.has("trace-json")) trace::set_collector(&collector);

  shard::ShardedEngineOptions sopt;
  sopt.num_shards = static_cast<std::size_t>(shards);
  sopt.partition =
      shard::parse_partition_strategy(args.get("partition", "range"));
  sopt.kind = parse_engine(engine);
  sopt.seed = seed + 2;
  if (args.has("budget")) {
    sopt.cache_budget_bytes =
        static_cast<std::uint64_t>(args.get_int("budget", 256)) << 20;
  }
  sopt.estimator.num_walks =
      static_cast<std::uint64_t>(args.get_int("walks", 0));
  if (args.has("wal-dir")) {
    sopt.durability.wal_dir = args.get("wal-dir", "wal");
    sopt.durability.snapshot_interval =
        static_cast<std::uint64_t>(args.get_int("snapshot-every", 8));
  }
  FaultInjector faults(
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0x5eed)));
  const double fault_p = args.get_double("faults", 0.0);
  if (fault_p > 0.0) {
    faults.arm_all(fault_p);
    sopt.fault_injector = &faults;
  }
  shard::ShardedMatchEngine srv(stream.initial, sopt);
  std::printf("sharded: %zu shard(s), %s partition, budget %llu B/shard\n",
              sopt.num_shards, shard::partition_strategy_name(sopt.partition),
              static_cast<unsigned long long>(srv.effective_cache_budget(0)));

  const auto list_limit = static_cast<std::size_t>(args.get_int("list", 0));
  std::size_t listed = 0;
  std::vector<std::string> names;
  for (const std::string& name : query_names) {
    QueryGraph q = parse_query(name, labels);
    names.push_back(q.name());
    std::printf("query %s: %u vertices %u edges |Aut|=%llu\n",
                q.name().c_str(), q.num_vertices(), q.num_edges(),
                static_cast<unsigned long long>(count_automorphisms(q)));
    MatchSink sink;
    if (list_limit > 0) {
      const auto id = static_cast<shard::QueryId>(names.size());
      sink = [&listed, list_limit, id](const MatchPlan& plan,
                                       std::span<const VertexId> b,
                                       int sign) {
        if (listed >= list_limit) return;
        ++listed;
        std::printf("  [q%u] %c match:", id, sign > 0 ? '+' : '-');
        for (std::size_t pos = 0; pos < b.size(); ++pos) {
          std::printf(" u%u->%d", plan.vertex_order[pos], b[pos]);
        }
        std::printf("\n");
      };
    }
    srv.register_query(std::move(q), std::move(sink));
  }

  const double duration_s = parse_duration_s(args);
  const Timer wall;
  for (std::size_t k = 0; k < max_batches; ++k) {
    if (duration_s > 0.0 && wall.seconds() >= duration_s) {
      std::printf("duration cap reached after %zu/%zu batches\n", k,
                  max_batches);
      break;
    }
    const shard::ShardedBatchReport r = srv.process_batch(stream.batches[k]);
    std::printf(
        "batch %zu: %+lld embeddings across %zu queries on %zu shards | "
        "sim (FE %.3f, DC %.3f, match %.3f, reorg %.3f ms) | wall %.1f ms "
        "| cut %llu | imbalance %.2f\n",
        k, static_cast<long long>(r.shared.stats.signed_embeddings),
        r.queries.size(), r.shards.size(), r.shared.sim_estimate_s * 1e3,
        r.shared.sim_pack_s * 1e3, r.shared.sim_match_s * 1e3,
        r.shared.sim_reorg_s * 1e3, r.shared.wall_total_ms(),
        static_cast<unsigned long long>(r.cut_edges), r.imbalance);
    std::printf(
        "  stitch: %llu routed joins, %llu migrated partials, %u "
        "supersteps, %.3f ms\n",
        static_cast<unsigned long long>(r.stitch.routed_items),
        static_cast<unsigned long long>(r.stitch.stitch_candidates),
        r.stitch.supersteps, r.stitch.stitch_seconds * 1e3);
    for (const shard::ShardQueryReport& q : r.queries) {
      std::printf("  q%u %s: %+lld (+%llu/-%llu)\n", q.id,
                  names[q.id - 1].c_str(),
                  static_cast<long long>(q.stats.signed_embeddings),
                  static_cast<unsigned long long>(q.stats.positive),
                  static_cast<unsigned long long>(q.stats.negative));
    }
    if (r.shared.retries > 0 || r.shared.cpu_fallback ||
        r.shared.degradation_level > 0 || !r.shared.quarantine.empty()) {
      std::printf(
          "  recovery: %u retries%s, degradation L%u (budget %llu B), "
          "%llu faults observed, %llu records quarantined\n",
          r.shared.retries, r.shared.cpu_fallback ? " (CPU fallback)" : "",
          r.shared.degradation_level,
          static_cast<unsigned long long>(r.shared.effective_cache_budget),
          static_cast<unsigned long long>(r.shared.faults_observed),
          static_cast<unsigned long long>(r.shared.quarantine.total()));
    }
  }
  trace::set_collector(nullptr);
  write_observability(args, collector);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  if (args.has("help")) return usage();

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto labels = static_cast<int>(args.get_int("labels", 4));

  // --- data graph -----------------------------------------------------
  CsrGraph graph;
  std::string graph_name;
  if (args.has("graph")) {
    graph_name = args.get("graph", "");
    graph = graph_name.size() > 4 &&
                    graph_name.substr(graph_name.size() - 4) == ".bin"
                ? load_binary(graph_name)
                : load_edge_list_text(graph_name);
  } else {
    graph_name = args.get("dataset", "FR");
    graph = make_workload_graph(graph_name, args.get_double("scale", 1.0),
                                static_cast<std::uint32_t>(labels), seed);
  }
  std::printf("%s\n", graph.summary(graph_name).c_str());

  if (args.has("save-graph")) {
    const std::string path = args.get("save-graph", "graph.bin");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      save_binary(graph, path);
    } else {
      save_edge_list_text(graph, path);
    }
    std::printf("saved to %s\n", path.c_str());
    if (!args.has("query")) return 0;
  }

  // --- update stream ----------------------------------------------------
  const auto batch_size =
      static_cast<std::size_t>(args.get_int("batch", 4096));
  UpdateStreamOptions sopt =
      default_stream_options(args.get("dataset", "FR"), batch_size, seed + 1);
  const UpdateStream stream = make_update_stream(graph, sopt);
  const auto max_batches = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("batches", 2)),
      stream.num_batches());

  // --- multi-query serving mode (repeated --query) ------------------------
  const std::vector<std::string> query_names = args.get_all("query");
  // Any admission flag routes through the serving engine too — the overload
  // controller fronts MultiQueryEngine, and a malformed flag value must
  // exit 2 on every path, never be silently ignored by the classic one.
  const bool admission_flags =
      args.has("max-queue") || args.has("admit-rate") ||
      args.has("shed-policy") || args.has("shed-deadline-ms") ||
      args.has("arrival") || args.has("arrival-rate");
  // --- multi-device sharded mode (--shards / --partition) -----------------
  if (args.has("shards") || args.has("partition")) {
    if (admission_flags) {
      throw Error(ErrorCode::kConfig,
                  "--shards cannot combine with the admission flags "
                  "(--max-queue/--admit-rate/--shed-*/--arrival*)");
    }
    return run_sharded(
        args, stream,
        query_names.empty() ? std::vector<std::string>{args.get("query", "Q1")}
                            : query_names,
        labels, seed, max_batches);
  }
  if (query_names.size() > 1 || admission_flags) {
    return run_multi_query(
        args, stream,
        query_names.empty() ? std::vector<std::string>{args.get("query", "Q1")}
                            : query_names,
        labels, seed, max_batches);
  }

  // --- query --------------------------------------------------------------
  const QueryGraph query = parse_query(args.get("query", "Q1"), labels);
  std::printf("query %s: %u vertices %u edges |Aut|=%llu\n",
              query.name().c_str(), query.num_vertices(), query.num_edges(),
              static_cast<unsigned long long>(count_automorphisms(query)));

  const auto list_limit = static_cast<std::size_t>(args.get_int("list", 0));
  std::size_t listed = 0;
  MatchSink sink = [&](const MatchPlan& plan, std::span<const VertexId> b,
                       int sign) {
    if (listed >= list_limit) return;
    ++listed;
    std::printf("  %c match:", sign > 0 ? '+' : '-');
    for (std::size_t pos = 0; pos < b.size(); ++pos) {
      std::printf(" u%u->%d", plan.vertex_order[pos], b[pos]);
    }
    std::printf("\n");
  };
  const MatchSink* sink_ptr = list_limit > 0 ? &sink : nullptr;

  // --- run ------------------------------------------------------------
  trace::TraceCollector collector;
  if (args.has("trace-json")) trace::set_collector(&collector);

  const std::string engine = args.get("engine", "gcsm");
  if (engine == "rf") {
    RapidFlowLikeEngine rf(stream.initial, query);
    for (std::size_t k = 0; k < max_batches; ++k) {
      const RapidFlowReport r = rf.process_batch(stream.batches[k], sink_ptr);
      std::printf(
          "batch %zu: %+lld embeddings, wall %.1f ms (index %.1f MB)\n", k,
          static_cast<long long>(r.stats.signed_embeddings),
          r.wall_total_ms(), static_cast<double>(r.index_bytes) / 1e6);
    }
    trace::set_collector(nullptr);
    write_observability(args, collector);
    return 0;
  }

  PipelineOptions popt;
  popt.kind = parse_engine(engine);
  popt.seed = seed + 2;
  if (args.has("budget")) {
    popt.cache_budget_bytes =
        static_cast<std::uint64_t>(args.get_int("budget", 256)) << 20;
  }
  popt.estimator.num_walks =
      static_cast<std::uint64_t>(args.get_int("walks", 0));
  if (args.has("wal-dir")) {
    popt.durability.wal_dir = args.get("wal-dir", "wal");
    popt.durability.snapshot_interval =
        static_cast<std::uint64_t>(args.get_int("snapshot-every", 8));
    popt.durability.recover_on_start = args.has("recover");
  }

  FaultInjector faults(
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0x5eed)));
  const double fault_p = args.get_double("faults", 0.0);
  if (fault_p > 0.0) {
    faults.arm_all(fault_p);
    popt.fault_injector = &faults;
  }
  Pipeline pipeline(stream.initial, query, popt);

  // With --recover, the durable state already covers a committed prefix of
  // the deterministic stream: resume submission right after it.
  std::size_t start_batch = 0;
  if (popt.durability.enabled() && popt.durability.recover_on_start) {
    const RecoveredState& rec = pipeline.recovery_info();
    const durable::DurableCounters& cum = pipeline.cumulative();
    start_batch = static_cast<std::size_t>(cum.batches_committed);
    std::printf(
        "recovered: %llu batch(es) committed (%s snapshot, %zu replayed, "
        "%zu uncommitted dropped)%s; resuming at batch %zu\n",
        static_cast<unsigned long long>(cum.batches_committed),
        rec.snapshot_loaded ? "with" : "no", rec.replay.size(),
        rec.dropped_uncommitted,
        rec.wal_tail_truncated ? " [WAL tail truncated]" : "", start_batch);
  }

  const gpusim::SimParams params = popt.sim;
  const double duration_s = parse_duration_s(args);
  const Timer wall;
  for (std::size_t k = start_batch; k < max_batches; ++k) {
    if (duration_s > 0.0 && wall.seconds() >= duration_s) {
      std::printf("duration cap reached after %zu/%zu batches\n", k,
                  max_batches);
      break;
    }
    const BatchReport r = pipeline.process_batch(stream.batches[k], sink_ptr);
    std::printf(
        "batch %zu: %+lld embeddings (+%llu/-%llu) | sim %.3f ms "
        "(match %.3f, FE %.3f, DC %.3f, reorg %.3f) | wall %.1f ms | "
        "cpu-bytes %.2f MB | cache %llu vtx, hit %.1f%%\n",
        k, static_cast<long long>(r.stats.signed_embeddings),
        static_cast<unsigned long long>(r.stats.positive),
        static_cast<unsigned long long>(r.stats.negative),
        r.sim_total_s() * 1e3, r.sim_match_s * 1e3, r.sim_estimate_s * 1e3,
        r.sim_pack_s * 1e3, r.sim_reorg_s * 1e3, r.wall_total_ms(),
        static_cast<double>(r.traffic.cpu_access_bytes(params)) / 1e6,
        static_cast<unsigned long long>(r.cached_vertices),
        100.0 * r.cache_hit_rate());
    if (r.retries > 0 || r.cpu_fallback || r.degradation_level > 0 ||
        !r.quarantine.empty()) {
      std::printf(
          "  recovery: %u retries%s, degradation L%u (budget %llu B), "
          "%llu faults observed, %llu records quarantined\n",
          r.retries, r.cpu_fallback ? " (CPU fallback)" : "",
          r.degradation_level,
          static_cast<unsigned long long>(r.effective_cache_budget),
          static_cast<unsigned long long>(r.faults_observed),
          static_cast<unsigned long long>(r.quarantine.total()));
    }
  }
  trace::set_collector(nullptr);
  write_observability(args, collector);
  return 0;
} catch (const gcsm::Error& e) {
  // One line, machine-prefixed with the taxonomy code; the exit code follows
  // the contract in docs/ROBUSTNESS.md (1 permanent, 2 config, 3 device).
  std::fprintf(stderr, "csm_cli: error [%s]: %s\n",
               error_code_name(e.code()), e.what());
  return exit_code_for(e.code());
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "csm_cli: error [config]: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "csm_cli: error: %s\n", e.what());
  return 1;
} catch (...) {
  std::fprintf(stderr, "csm_cli: error: unknown exception\n");
  return 1;
}
