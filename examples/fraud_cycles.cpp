// Fraud monitoring on a transaction stream (the paper's money-laundering
// motivation, Sec. I): accounts are vertices, transactions are edges, and a
// short cycle of transfers among distinct accounts is a classic laundering
// signature. CSM flags every NEW cycle the moment its closing transaction
// arrives, instead of re-scanning the ledger.
//
// Accounts carry labels (0=retail, 1=business, 2=offshore); we watch for a
// 4-cycle that passes through an offshore account.
#include <cstdio>
#include <set>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/update_stream.hpp"
#include "query/patterns.hpp"
#include "util/cli.hpp"

using namespace gcsm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  Rng rng(args.get_int("seed", 17));

  // Transaction network: heavy-tailed (a few exchange-like hubs), with
  // label 2 (offshore) assigned to ~1/8 of accounts by the generator.
  const CsrGraph network = generate_barabasi_albert(
      static_cast<VertexId>(args.get_int("accounts", 30000)), 3, 3, rng);
  std::printf("%s\n", network.summary("transaction network").c_str());

  // Suspicious pattern: a 4-cycle of transfers where at least one party is
  // an offshore account (label 2). Remaining parties unconstrained.
  const QueryGraph pattern = QueryGraph::from_edges(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
      {2, kWildcardLabel, kWildcardLabel, kWildcardLabel},
      "offshore-cycle");
  std::printf("watching: 4-cycle through an offshore account\n");

  // The transaction feed: 20%% of edges replayed as inserts/deletes
  // (deletes model chargebacks / reversals).
  UpdateStreamOptions stream_opt;
  stream_opt.pool_edge_fraction = 0.20;
  stream_opt.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 256));
  const UpdateStream feed = make_update_stream(network, stream_opt);

  PipelineOptions opt;
  opt.kind = EngineKind::kGcsm;
  Pipeline monitor(feed.initial, pattern, opt);

  // Alert sink: deduplicate embeddings into distinct account sets.
  std::set<std::set<VertexId>> alerts;
  MatchSink sink = [&](const MatchPlan&, std::span<const VertexId> binding,
                       int sign) {
    if (sign > 0) {
      alerts.emplace(binding.begin(), binding.end());
    }
  };

  const std::size_t max_batches =
      static_cast<std::size_t>(args.get_int("batches", 8));
  std::int64_t net_cycles = 0;
  for (std::size_t k = 0; k < std::min(max_batches, feed.num_batches());
       ++k) {
    alerts.clear();
    const BatchReport r = monitor.process_batch(feed.batches[k], &sink);
    net_cycles += r.stats.signed_embeddings;
    std::printf(
        "batch %3zu: %4zu new suspicious rings, %+lld net cycle "
        "embeddings, %.3f ms simulated\n",
        k, alerts.size(), static_cast<long long>(r.stats.signed_embeddings),
        r.sim_total_s() * 1e3);
    std::size_t shown = 0;
    for (const auto& ring : alerts) {
      if (shown++ >= 3) break;
      std::printf("    ring:");
      for (const VertexId account : ring) {
        std::printf(" %d(%s)", account,
                    monitor.graph().label(account) == 2 ? "offshore"
                                                        : "onshore");
      }
      std::printf("\n");
    }
  }
  std::printf("net cycle-embedding change across the feed: %+lld\n",
              static_cast<long long>(net_cycles));
  return 0;
}
